#!/usr/bin/env python
"""Capacity analysis: what does a fault *really* cost the machine?

Three accounting schemes for the same random faults on a 3D mesh:

1. **Lamb regime** (this paper): survivors = good nodes minus lambs;
   any survivor talks to any survivor in 2 rounds / 2 VCs.
2. **Healthy-submesh reservation** (scheduler avoidance): usable
   capacity = the largest fully healthy cubic submesh.
3. **Rectangularization + ring routing** ([4]-style): good nodes
   inside merged bounding boxes are inactivated.

Also sanity-checks the analytic one-round blocking model against the
measured routing-table round usage: the predicted fraction of pairs
needing a second round matches the measured histogram.

Run:  python examples/capacity_analysis.py [n]
"""

import sys

import numpy as np

from repro import Mesh, find_lamb_set, repeated, xyz
from repro.analysis import expected_one_round_reachable_fraction
from repro.baselines import inactivated_nodes
from repro.core import build_routing_table
from repro.mesh import random_node_faults
from repro.placement import largest_free_cubic_submesh, usable_grid


def main(n: int = 12) -> None:
    mesh = Mesh.square(3, n)
    N = mesh.num_nodes
    orderings = repeated(xyz(), 2)
    rng = np.random.default_rng(9)

    print(f"machine: {mesh} ({N} nodes)\n")
    print(f"{'%flt':>5} {'f':>5} {'lamb-regime':>12} {'best submesh':>13} "
          f"{'rectangularized':>16}")
    for pct in (0.5, 1.0, 2.0, 3.0):
        f = max(1, round(N * pct / 100))
        faults = random_node_faults(mesh, f, rng)
        result = find_lamb_set(faults, orderings)
        grid = usable_grid(result)
        surv = int(grid.sum())
        cube = largest_free_cubic_submesh(grid)
        inact = inactivated_nodes(faults)
        rect_usable = N - f - inact.num_inactivated
        print(f"{pct:>5} {f:>5} {surv:>8} ({100*surv/N:4.1f}%) "
              f"{cube ** 3:>7} ({100*cube**3/N:4.1f}%) "
              f"{rect_usable:>10} ({100*rect_usable/N:4.1f}%)")

    # Analytic vs measured round usage.
    f = max(1, round(N * 2 / 100))
    faults = random_node_faults(mesh, f, rng)
    result = find_lamb_set(faults, orderings)
    predicted = expected_one_round_reachable_fraction(
        mesh, f, samples=4000, condition_endpoints_good=True
    )
    survivors = result.survivors()
    pairs = []
    for _ in range(600):
        i, j = rng.integers(len(survivors), size=2)
        if i != j:
            pairs.append((survivors[int(i)], survivors[int(j)]))
    table = build_routing_table(result, pairs=pairs)
    hist = table.round_usage_histogram()
    measured = hist.get(1, 0) / max(1, sum(hist.values()))
    print(f"\none-round reachable fraction @2% faults: "
          f"analytic {predicted:.3f}, measured {measured:.3f}")
    print("(the 2-round design exists exactly for the remaining "
          f"{100 * (1 - measured):.1f}% of pairs)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
