#!/usr/bin/env python
"""Quickstart: the paper's Section 5 worked example, end to end.

Builds the 12x12 mesh with three faults (Fig. 2), finds the SES/DES
partitions (Figs. 3-4), prints the reachability matrices R (Table 1)
and R^(2) (Table 2), computes the lamb set Λ = {(11,10), (10,11)}
(Fig. 10), verifies it against the definition, and materializes a
2-round route between two survivors.

Run:  python examples/quickstart.py
"""

from repro import FaultSet, Mesh, find_lamb_set, repeated, xy
from repro.core import is_lamb_set
from repro.experiments import render_matrix, worked_example
from repro.routing import FaultGrids, count_turns_multiround, find_k_round_route


def main() -> None:
    mesh = Mesh((12, 12))
    faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
    orderings = repeated(xy(), 2)  # two rounds of XY routing, one VC each

    print(f"mesh: {mesh}, faults: {list(faults.node_faults)}")

    result = find_lamb_set(faults, orderings)
    print(f"\nSES partition: {result.num_ses} sets (paper: 9)")
    print(f"DES partition: {result.num_des} sets (paper: 7)")
    print(f"lamb set: {sorted(result.lambs)} (paper: [(10,11), (11,10)])")
    print(f"cover weight: {result.cover_weight} (paper: 2)")
    print(f"additional damage |lambs|/f: {result.additional_damage():.2f}")

    # The published tables, regenerated with the paper's numbering.
    we = worked_example()
    print("\nTable 1 (one-round reachability R):")
    print(render_matrix(we.R))
    print("Table 2 (two-round reachability R^(2)):")
    print(render_matrix(we.R2))
    print(f"exactly matches the paper: {we.matches_paper()}")

    # Certify Λ directly against Definition 2.6 (brute force).
    print(f"is a valid lamb set: {is_lamb_set(faults, orderings, result.lambs)}")

    # Materialize a concrete 2-round route between two survivors that
    # cannot reach each other in one round.
    grids = FaultGrids(faults)
    src, dst = (10, 2), (10, 11)  # dst is a lamb... pick survivors:
    src, dst = (0, 1), (9, 2)
    paths = find_k_round_route(grids, orderings, src, dst)
    assert paths is not None
    print(f"\n2-round route {src} -> {dst}:")
    for t, p in enumerate(paths):
        print(f"  round {t + 1} ({len(p) - 1} hops): {p[0]} .. {p[-1]}")
    print(f"  turns: {count_turns_multiround(paths)} (2-round 2D bound: 3)")


if __name__ == "__main__":
    main()
