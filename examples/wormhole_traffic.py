#!/usr/bin/env python
"""Wormhole traffic study + deadlock demonstration.

Part 1 drives the flit-level simulator over a faulty 2D mesh with a
lamb set, comparing traffic patterns (uniform, permutation, hotspot,
transpose) and the intermediate-node policies for 2-round routes
('shortest' vs 'first' — the congestion heuristic remark after
Definition 2.3).

Part 2 deliberately violates the one-VC-per-round discipline by
putting both rounds on virtual channel 0 and shows the resulting
wait-for cycle being caught by the deadlock detector — the
experimental counterpart of the paper's claim that k rounds need k
virtual channels.

Run:  python examples/wormhole_traffic.py
"""

import numpy as np

from repro import FaultSet, Mesh, find_lamb_set, repeated, xy
from repro.wormhole import (
    DeadlockError,
    Hop,
    WormholeSimulator,
    hotspot_traffic,
    permutation_traffic,
    transpose_traffic,
    uniform_random_traffic,
)


def run_pattern(name, faults, orderings, injections, policy="shortest"):
    sim = WormholeSimulator(faults, orderings, policy=policy, seed=42)
    for m in injections:
        sim.send(m.source, m.dest, m.num_flits, m.inject_cycle)
    stats = sim.run()
    print(f"  {name:<22s} {stats.delivered:4d} msgs  "
          f"{stats.cycles:6d} cycles  avg lat {stats.avg_latency:7.1f}  "
          f"p95 {stats.p95_latency:7.1f}  thr {stats.throughput_flits_per_cycle:5.2f} "
          f"flits/cyc  max turns {stats.max_turns}")
    return stats


def main() -> None:
    mesh = Mesh((16, 16))
    rng = np.random.default_rng(7)
    faults = FaultSet(mesh, mesh.random_nodes(8, rng))
    orderings = repeated(xy(), 2)
    result = find_lamb_set(faults, orderings)
    survivors = [v for v in mesh.nodes() if result.is_survivor(v)]
    print(f"{mesh}: {faults.num_node_faults} faults, {result.size} lambs, "
          f"{len(survivors)} survivors\n")

    print("traffic patterns (2 VCs, shortest-intermediate policy):")
    run_pattern("uniform random", faults, orderings,
                uniform_random_traffic(survivors, 150, rng, num_flits=8,
                                       inject_window=100))
    run_pattern("permutation", faults, orderings,
                permutation_traffic(survivors, rng, num_flits=4))
    run_pattern("hotspot (30%)", faults, orderings,
                hotspot_traffic(survivors, 120, rng, hotspot_fraction=0.3,
                                num_flits=4))
    run_pattern("transpose", faults, orderings,
                transpose_traffic(mesh, survivors, num_flits=4))

    print("\nintermediate-node policy comparison (uniform traffic):")
    load = uniform_random_traffic(survivors, 200, rng, num_flits=8)
    for policy in ("shortest", "first", "random"):
        run_pattern(f"policy={policy}", faults, orderings, load, policy=policy)

    print("\ndeadlock demo: both rounds forced onto VC 0, cyclic demand")
    bad = WormholeSimulator(FaultSet(mesh), orderings,
                            vc_of_round=lambda t: 0, num_vcs=1,
                            buffer_flits=1, seed=3)
    ring = [(0, 0), (3, 0), (3, 3), (0, 3)]
    for i in range(4):
        a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
        hops = [Hop(u, v, 0) for p in (_line(a, b), _line(b, c))
                for u, v in zip(p, p[1:])]
        bad.send(a, c, num_flits=16, hops=hops)
    try:
        bad.run(5000)
        print("  no deadlock (unexpected!)")
    except DeadlockError as e:
        print(f"  DeadlockError: wait-for cycle among messages {e.cycle} — "
              f"as predicted, 2 rounds on 1 VC are not deadlock-free")


def _line(a, b):
    """Straight L-shaped path a -> b (x first, then y)."""
    path = [a]
    x, y = a
    while x != b[0]:
        x += 1 if b[0] > x else -1
        path.append((x, y))
    while y != b[1]:
        y += 1 if b[1] > y else -1
        path.append((x, y))
    return path


if __name__ == "__main__":
    main()
