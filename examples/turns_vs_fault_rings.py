#!/usr/bin/env python
"""Lambs vs fault-ring routing vs inactivation.

Reproduces the qualitative comparisons of Section 1:

1. **Turns.** On the 'ladder' fault pattern, a Boppana-Chalasani-style
   fault-ring router serpentines around every rung — a constant times
   n turns — while 2-round lamb routing needs at most 3 turns on 2D.
2. **Sacrificed nodes.** On random faults, rectangularizing the fault
   regions (so ring-based schemes apply) inactivates far more good
   nodes than the lamb approach sacrifices — the paper's open question,
   answered empirically.

Run:  python examples/turns_vs_fault_rings.py
"""

import numpy as np

from repro import FaultSet, Mesh, find_lamb_set, repeated, xy
from repro.baselines import BlockFaultRouter, inactivated_nodes
from repro.baselines.block_fault import comb_blocks
from repro.routing import (
    FaultGrids,
    count_turns,
    count_turns_multiround,
    find_k_round_route,
)


def turn_comparison() -> None:
    print("=== turns: fault-ring router vs 2-round lamb routing ===")
    orderings = repeated(xy(), 2)
    print(f"{'n':>4} {'rungs':>6} {'ring turns':>11} {'lamb turns':>11}")
    for n in (16, 32, 64):
        mesh = Mesh((n, n))
        blocks = comb_blocks(mesh, column=n // 2)
        router = BlockFaultRouter(mesh, blocks)
        src, dst = (n // 2, 0), (n // 2, n - 1)
        ring_turns = count_turns(router.route(src, dst))

        faults = router.fault_set()
        result = find_lamb_set(faults, orderings)
        assert result.is_survivor(src) and result.is_survivor(dst)
        paths = find_k_round_route(FaultGrids(faults), orderings, src, dst)
        assert paths is not None
        lamb_turns = count_turns_multiround(paths)
        print(f"{n:>4} {len(blocks):>6} {ring_turns:>11} {lamb_turns:>11}")
    print("ring turns grow linearly with n; lamb routing is bounded by 3.\n")


def sacrifice_comparison() -> None:
    print("=== sacrificed nodes: inactivation vs lambs (random faults) ===")
    from repro import xyz

    mesh = Mesh.square(3, 16)  # the paper's 3D regime
    orderings = repeated(xyz(), 2)
    rng = np.random.default_rng(11)
    print(f"{'faults':>7} {'%N':>5} {'inactivated':>12} {'lambs':>6}")
    for f in (20, 41, 82, 123):  # 0.5% .. 3% of 4096 nodes
        inact_counts, lamb_counts = [], []
        for _ in range(3):
            faults = FaultSet(mesh, mesh.random_nodes(f, rng))
            inact_counts.append(inactivated_nodes(faults).num_inactivated)
            lamb_counts.append(find_lamb_set(faults, orderings).size)
        print(f"{f:>7} {100 * f / mesh.num_nodes:>5.1f} "
              f"{np.mean(inact_counts):>12.1f} {np.mean(lamb_counts):>6.1f}")
    print(
        "In 3D the bounding boxes chain-merge catastrophically (at 3% faults\n"
        "rectangularization kills thousands of good nodes; lambs: a handful).\n"
        "Caveat: on 2D meshes with faults beyond the bisection width the\n"
        "comparison flips — see benchmarks/bench_ablation_inactivation.py."
    )


if __name__ == "__main__":
    turn_comparison()
    sacrifice_comparison()
