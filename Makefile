# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:warnings

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate EXPERIMENTS.md (REPRO_TRIALS=1000 for paper-scale stats).
experiments:
	$(PYTHON) -m repro.experiments.generate EXPERIMENTS.md

examples:
	@for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
