# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-json bench-check experiments examples chaos-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:warnings

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable perf subset -> BENCH_<date>.json (commit the file
# to arm the CI perf gate; see docs/performance.md).
bench-json:
	$(PYTHON) benchmarks/bench_to_json.py

# Compare a fresh run against the latest committed BENCH_*.json;
# fails on a >25% wall-clock regression on the same host.
bench-check:
	$(PYTHON) benchmarks/bench_to_json.py --check

# Regenerate EXPERIMENTS.md (REPRO_TRIALS=1000 for paper-scale stats).
experiments:
	$(PYTHON) -m repro.experiments.generate EXPERIMENTS.md

examples:
	@for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

# Seeded chaos smoke: the acceptance scenario (8x8 mesh, 3 mid-flight
# fault events) must be deterministic, fully accounted, and complete
# >=3 reconfiguration epochs.  Run twice and diff to prove determinism.
chaos-smoke:
	$(PYTHON) -m repro chaos --mesh 8x8 --faults 2 --messages 120 \
	    --events 3 --seed 0 > /tmp/chaos-smoke-1.txt
	$(PYTHON) -m repro chaos --mesh 8x8 --faults 2 --messages 120 \
	    --events 3 --seed 0 > /tmp/chaos-smoke-2.txt
	diff /tmp/chaos-smoke-1.txt /tmp/chaos-smoke-2.txt
	grep -q "epoch 2 " /tmp/chaos-smoke-1.txt
	@echo "chaos smoke OK: deterministic and >=3 epochs"

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
