# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-json bench-check experiments examples chaos-smoke serve-smoke shard-smoke obs-smoke reliability-smoke vector-smoke workflow-smoke lint analyze concurrency concurrency-smoke prove-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:warnings

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable perf subset -> BENCH_<date>.json (commit the file
# to arm the CI perf gate; see docs/performance.md).
bench-json:
	$(PYTHON) benchmarks/bench_to_json.py

# Compare a fresh run against the latest committed BENCH_*.json;
# fails on a >25% wall-clock regression on the same host.
bench-check:
	$(PYTHON) benchmarks/bench_to_json.py --check

# Regenerate EXPERIMENTS.md (REPRO_TRIALS=1000 for paper-scale stats).
experiments:
	$(PYTHON) -m repro.experiments.generate EXPERIMENTS.md

examples:
	@for e in examples/*.py; do echo "== $$e"; $(PYTHON) $$e || exit 1; done

# Seeded chaos smoke: the acceptance scenario (8x8 mesh, 3 mid-flight
# fault events) must be deterministic, fully accounted, and complete
# >=3 reconfiguration epochs.  Run twice and diff to prove determinism.
chaos-smoke:
	$(PYTHON) -m repro chaos --mesh 8x8 --faults 2 --messages 120 \
	    --events 3 --seed 0 > /tmp/chaos-smoke-1.txt
	$(PYTHON) -m repro chaos --mesh 8x8 --faults 2 --messages 120 \
	    --events 3 --seed 0 > /tmp/chaos-smoke-2.txt
	diff /tmp/chaos-smoke-1.txt /tmp/chaos-smoke-2.txt
	grep -q "epoch 2 " /tmp/chaos-smoke-1.txt
	@echo "chaos smoke OK: deterministic and >=3 epochs"

# Control-plane smoke: the end-to-end acceptance scenario (16x16 mesh,
# 5 seeded faults, 1000 queries over real TCP; cache hit verified via
# the stats RPC, mid-run fault delta -> epoch bump, stale-epoch
# rejection, graceful drain).  Every line is deterministic for a fixed
# seed, so run twice and diff to prove it.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve --smoke > /tmp/serve-smoke-1.txt
	PYTHONPATH=src $(PYTHON) -m repro serve --smoke > /tmp/serve-smoke-2.txt
	diff /tmp/serve-smoke-1.txt /tmp/serve-smoke-2.txt
	grep -q "cache_hit True" /tmp/serve-smoke-1.txt
	grep -q "stale query: typed stale-epoch" /tmp/serve-smoke-1.txt
	grep -q "drain: orphaned compiles 0" /tmp/serve-smoke-1.txt
	grep -q "^smoke OK" /tmp/serve-smoke-1.txt
	@echo "serve smoke OK: deterministic, cached, epoch-safe, drained"

# Sharded-plane smoke (CI job: test, blocking): 1 router + 3 replica
# workers over a shared store.  Two mixed query/delta loadgen
# campaigns (binary codec); one worker is SIGKILLed mid-campaign and
# every reply must still arrive (reads retry on survivors), then the
# respawn replays the mutation log and rejoins.  Every line is
# seed-deterministic, so run twice and diff the transcripts.
shard-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve --shard-smoke \
	    > /tmp/shard-smoke-1.txt
	PYTHONPATH=src $(PYTHON) -m repro serve --shard-smoke \
	    > /tmp/shard-smoke-2.txt
	diff /tmp/shard-smoke-1.txt /tmp/shard-smoke-2.txt
	grep -q '"ok": 300' /tmp/shard-smoke-1.txt
	grep -q "recovery: respawns 1 in_sync 3/3" /tmp/shard-smoke-1.txt
	grep -q "epoch_divergences 0" /tmp/shard-smoke-1.txt
	grep -q "^smoke OK" /tmp/shard-smoke-1.txt
	@echo "shard smoke OK: deterministic, no lost replies, worker respawned"

# Telemetry smoke: run the seeded observability scenario (repro
# stats: lamb pipeline + simulator with a mid-run fault + control
# plane + trial engine, one registry) twice with timings redacted.
# Everything except wall-clock durations is a pure function of the
# seed, so all three export formats must be byte-identical; then
# grep one key series from each instrumented layer.
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro stats --redact-timings \
	    --format prom --telemetry /tmp/obs-smoke-1 > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro stats --redact-timings \
	    --format prom --telemetry /tmp/obs-smoke-2 > /dev/null
	diff /tmp/obs-smoke-1.prom /tmp/obs-smoke-2.prom
	diff /tmp/obs-smoke-1.ndjson /tmp/obs-smoke-2.ndjson
	diff /tmp/obs-smoke-1.json /tmp/obs-smoke-2.json
	grep -q 'span="lamb.wvc"' /tmp/obs-smoke-1.prom
	grep -q 'sim_aborts_total{engine="frontier",reason="endpoint-failed"} 1' \
	    /tmp/obs-smoke-1.prom
	grep -q 'service_compiles_total 2' /tmp/obs-smoke-1.prom
	grep -q 'trial_chunks_total 1' /tmp/obs-smoke-1.prom
	grep -q 'telemetry_events_dropped 0' /tmp/obs-smoke-1.prom
	@echo "obs smoke OK: deterministic exports, every layer present"

# Reliability smoke: a seeded two-epoch-scale Poisson campaign on
# M2(8), run once on the thread executor and once on the process
# executor.  The JSON report is a pure function of the campaign
# config, so the two files must be byte-identical — that diff is the
# determinism proof across executor backends — and the report must
# show every trial accounted for.
reliability-smoke:
	PYTHONPATH=src $(PYTHON) -m repro reliability --mesh 8x8 \
	    --rate 1.5 --mttr 0.3 --horizon 2 --trials 4 --seed 0 \
	    --jobs 2 --executor thread --json /tmp/reliability-smoke-1.json \
	    | grep -v "^wrote " > /tmp/reliability-smoke-1.txt
	PYTHONPATH=src $(PYTHON) -m repro reliability --mesh 8x8 \
	    --rate 1.5 --mttr 0.3 --horizon 2 --trials 4 --seed 0 \
	    --jobs 2 --executor process --json /tmp/reliability-smoke-2.json \
	    | grep -v "^wrote " > /tmp/reliability-smoke-2.txt
	diff /tmp/reliability-smoke-1.json /tmp/reliability-smoke-2.json
	diff /tmp/reliability-smoke-1.txt /tmp/reliability-smoke-2.txt
	grep -q '"all_accounted": true' /tmp/reliability-smoke-1.json
	grep -q "all_accounted=True" /tmp/reliability-smoke-1.txt
	@echo "reliability smoke OK: thread/process byte-identical, all trials accounted"

# Vector-engine smoke: the Section 5 worked example (12x12 mesh, three
# faults) pushed through all three step engines.  Each engine runs
# twice and the outputs are diffed (determinism proof), then the three
# engines' outputs are diffed against each other (cycle-exactness:
# every engine must report identical cycles/latency/turn stats).
vector-smoke:
	for eng in frontier scan vector; do \
	    PYTHONPATH=src $(PYTHON) -m repro simulate --mesh 12x12 \
	        --fault 9,1 --fault 11,6 --fault 10,10 --messages 150 \
	        --seed 0 --engine $$eng > /tmp/vector-smoke-$$eng-1.txt || exit 1; \
	    PYTHONPATH=src $(PYTHON) -m repro simulate --mesh 12x12 \
	        --fault 9,1 --fault 11,6 --fault 10,10 --messages 150 \
	        --seed 0 --engine $$eng > /tmp/vector-smoke-$$eng-2.txt || exit 1; \
	    diff /tmp/vector-smoke-$$eng-1.txt /tmp/vector-smoke-$$eng-2.txt \
	        || exit 1; \
	done
	diff /tmp/vector-smoke-frontier-1.txt /tmp/vector-smoke-vector-1.txt
	diff /tmp/vector-smoke-scan-1.txt /tmp/vector-smoke-vector-1.txt
	@echo "vector smoke OK: three engines deterministic and cycle-identical"

# Workflow smoke (CI job: test, blocking): the ISSUE acceptance gate.
# 1. chaos-campaign twice against one checkpoint store — the second
#    run must be 100%% cache hits (zero recomputation) and the two
#    report artifacts byte-identical.
# 2. kill-and-resume: the same preset in a fresh store, SIGKILLed at
#    the chaos-burst step boundary (REPRO_WORKFLOW_KILL_AFTER), then
#    resumed — the resumed report must be byte-identical to the
#    straight-through one with all pre-kill steps served from cache.
workflow-smoke:
	rm -rf /tmp/wf-smoke-store /tmp/wf-smoke-kill
	PYTHONPATH=src $(PYTHON) -m repro workflow run chaos-campaign \
	    --store /tmp/wf-smoke-store --json \
	    --out /tmp/wf-smoke-run1.json > /tmp/wf-smoke-outcome1.json
	PYTHONPATH=src $(PYTHON) -m repro workflow run chaos-campaign \
	    --store /tmp/wf-smoke-store --json \
	    --out /tmp/wf-smoke-run2.json > /tmp/wf-smoke-outcome2.json
	diff /tmp/wf-smoke-run1.json /tmp/wf-smoke-run2.json
	grep -q '"executed_steps": 0' /tmp/wf-smoke-outcome2.json
	grep -q '"cached_steps": 5' /tmp/wf-smoke-outcome2.json
	REPRO_WORKFLOW_KILL_AFTER=chaos-burst PYTHONPATH=src \
	    $(PYTHON) -m repro workflow run chaos-campaign \
	    --store /tmp/wf-smoke-kill > /dev/null 2>&1; \
	    test $$? -eq 137
	PYTHONPATH=src $(PYTHON) -m repro workflow resume chaos-campaign \
	    --store /tmp/wf-smoke-kill --json \
	    --out /tmp/wf-smoke-resumed.json > /tmp/wf-smoke-outcome3.json
	grep -q '"cached_steps": 2' /tmp/wf-smoke-outcome3.json
	diff /tmp/wf-smoke-resumed.json /tmp/wf-smoke-run1.json
	@echo "workflow smoke OK: cached rerun + kill-and-resume byte-identical"

# Static analysis gate (CI job: lint).  ruff and mypy are skipped
# gracefully when not installed (offline dev containers); the domain
# lint suite (`repro analyze`) always runs and always blocks.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; \
	then ruff check src tests; \
	else echo "ruff not installed; skipping (CI runs it)"; fi
	PYTHONPATH=src $(PYTHON) -m repro analyze src
	PYTHONPATH=src $(PYTHON) -m repro analyze --concurrency src \
	    --baseline concurrency_baseline.json
	@if $(PYTHON) -c "import mypy" 2>/dev/null; \
	then PYTHONPATH=src $(PYTHON) -m mypy -p repro.routing -p repro.graphs \
	    -p repro.service -p repro.core.routing_table -p repro.obs \
	    -p repro.reliability -p repro.analysis; \
	else echo "mypy not installed; skipping (CI runs it)"; fi

# Just the domain lint suite.
analyze:
	PYTHONPATH=src $(PYTHON) -m repro analyze src

# The interprocedural concurrency pass (REP201-REP205) over the tree,
# gated by the committed suppression baseline: new findings AND stale
# baseline entries both fail, so the baseline can neither silently
# grow nor rot.
concurrency:
	PYTHONPATH=src $(PYTHON) -m repro analyze --concurrency src \
	    --baseline concurrency_baseline.json

# Concurrency smoke (CI job: lint, blocking): run the pass twice with
# JSON artifacts and diff them — the report must be a pure function of
# the sources — then apply the baseline gate.
concurrency-smoke:
	PYTHONPATH=src $(PYTHON) -m repro analyze --concurrency src \
	    --baseline concurrency_baseline.json --format json \
	    --out /tmp/concurrency-smoke-1.json > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro analyze --concurrency src \
	    --baseline concurrency_baseline.json --format json \
	    --out /tmp/concurrency-smoke-2.json > /dev/null
	diff /tmp/concurrency-smoke-1.json /tmp/concurrency-smoke-2.json
	grep -q '"schema": 1' /tmp/concurrency-smoke-1.json
	grep -q '"cycles": \[\]' /tmp/concurrency-smoke-1.json
	@echo "concurrency smoke OK: deterministic report, baseline gate clean"

# CDG prover smoke: the paper's discipline must verify, the broken
# single-VC discipline must be refuted with a counterexample cycle.
prove-smoke:
	PYTHONPATH=src $(PYTHON) -m repro prove --mesh 16x16 --faults 8 --seed 1
	! PYTHONPATH=src $(PYTHON) -m repro prove --mesh 4x4 --single-vc
	@echo "prove smoke OK: good discipline accepted, broken refuted"

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
