"""Tests for repro.mesh.faults."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.mesh import (
    FaultSet,
    Mesh,
    cross_block,
    l_shaped_block,
    random_link_faults,
    random_node_faults,
    rectangular_block,
    t_shaped_block,
)

from conftest import faulty_meshes


class TestFaultSet:
    def test_empty(self):
        f = FaultSet(Mesh((4, 4)))
        assert f.f == 0
        assert f.is_empty()
        assert not f.node_is_faulty((0, 0))

    def test_node_faults(self):
        f = FaultSet(Mesh((4, 4)), [(1, 2), (3, 3)])
        assert f.f == 2
        assert f.node_is_faulty((1, 2))
        assert not f.node_is_faulty((2, 1))

    def test_deduplicates_nodes(self):
        f = FaultSet(Mesh((4, 4)), [(1, 2), (1, 2)])
        assert f.num_node_faults == 1

    def test_rejects_out_of_mesh(self):
        with pytest.raises(ValueError):
            FaultSet(Mesh((4, 4)), [(4, 0)])

    def test_link_faults_directed(self):
        m = Mesh((4, 4))
        f = FaultSet(m, (), [((0, 0), (0, 1))])
        assert f.num_link_faults == 1
        assert f.link_is_faulty((0, 0), (0, 1))
        assert not f.link_is_faulty((0, 1), (0, 0))

    def test_link_incident_to_node_fault(self):
        m = Mesh((4, 4))
        f = FaultSet(m, [(0, 0)], [((0, 0), (0, 1))])
        # The explicit link fault is redundant and dropped...
        assert f.num_link_faults == 0
        # ...but the link is still unusable because the node is faulty.
        assert f.link_is_faulty((0, 0), (0, 1))
        assert f.link_is_faulty((1, 0), (0, 0))

    def test_rejects_non_link(self):
        with pytest.raises(ValueError):
            FaultSet(Mesh((4, 4)), (), [((0, 0), (1, 1))])

    def test_good_nodes(self):
        m = Mesh((3, 3))
        f = FaultSet(m, [(1, 1)])
        good = f.good_nodes()
        assert len(good) == 8
        assert (1, 1) not in good

    def test_fault_array(self):
        m = Mesh((4, 4))
        f = FaultSet(m, [(1, 2), (3, 0)])
        arr = f.node_fault_array()
        assert arr.shape == (2, 4 - 2)  # (2 faults, d=2)
        assert set(map(tuple, arr)) == {(1, 2), (3, 0)}

    def test_with_nodes_as_faults(self):
        m = Mesh((4, 4))
        f = FaultSet(m, [(0, 0)]).with_nodes_as_faults([(1, 1)])
        assert f.num_node_faults == 2

    def test_with_links_as_faults(self):
        m = Mesh((4, 4))
        f = FaultSet(m, [(3, 3)]).with_links_as_faults([((0, 0), (1, 0))])
        assert f.num_link_faults == 1
        assert f.link_is_faulty((0, 0), (1, 0))

    def test_incremental_union_matches_from_scratch(self):
        """Growing a fault set one event at a time is == (and hashes
        identically) to building it in one shot -- the invariant the
        chaos engine's epoch bookkeeping relies on."""
        m = Mesh((5, 5))
        grown = (
            FaultSet(m, [(1, 1)])
            .with_faults(node_faults=[(2, 2)])
            .with_links_as_faults([((0, 0), (0, 1))])
            .with_faults(link_faults=[((3, 3), (3, 4))])
        )
        scratch = FaultSet(
            m,
            [(1, 1), (2, 2)],
            [((0, 0), (0, 1)), ((3, 3), (3, 4))],
        )
        assert grown == scratch
        assert hash(grown) == hash(scratch)

    def test_with_faults_canonicalizes_implied_links(self):
        """A link incident to a *newly added* node fault is dropped by
        the union, exactly as the one-shot constructor would."""
        m = Mesh((4, 4))
        f = FaultSet(m).with_faults(
            node_faults=[(0, 0)], link_faults=[((0, 0), (0, 1))]
        )
        assert f.num_link_faults == 0
        assert f.link_is_faulty((0, 0), (0, 1))  # implied by the node
        assert f == FaultSet(m, [(0, 0)], [((0, 0), (0, 1))])

    def test_links_as_node_faults(self):
        m = Mesh((4, 4))
        f = FaultSet(m, [(3, 3)], [((0, 0), (1, 0)), ((2, 2), (2, 1))])
        converted = f.links_as_node_faults()
        assert converted.num_link_faults == 0
        assert converted.node_is_faulty((0, 0))
        assert converted.node_is_faulty((2, 2))
        assert converted.node_is_faulty((3, 3))

    def test_equality(self):
        m = Mesh((4, 4))
        assert FaultSet(m, [(1, 1), (2, 2)]) == FaultSet(m, [(2, 2), (1, 1)])

    @given(faulty_meshes())
    @settings(max_examples=20, deadline=None)
    def test_f_counts_nodes_and_links(self, faults):
        assert faults.f == faults.num_node_faults + faults.num_link_faults


class TestRandomGenerators:
    def test_random_node_faults(self):
        m = Mesh((8, 8))
        f = random_node_faults(m, 10, np.random.default_rng(0))
        assert f.num_node_faults == 10
        assert len(set(f.node_faults)) == 10

    def test_random_link_faults(self):
        m = Mesh((5, 5))
        f = random_link_faults(m, 7, np.random.default_rng(0))
        assert f.num_link_faults == 7
        assert f.num_node_faults == 0

    def test_random_link_faults_directed_count_is_f(self):
        """Regression for the docstring contract: directed draws give
        exactly ``count`` faulty directed links, so ``f == count``."""
        m = Mesh((6, 6))
        for count in (1, 5, 12):
            f = random_link_faults(m, count, np.random.default_rng(count))
            assert f.num_link_faults == count
            assert f.f == count

    def test_random_link_faults_bidirectional(self):
        m = Mesh((5, 5))
        f = random_link_faults(m, 4, np.random.default_rng(0), bidirectional=True)
        assert f.num_link_faults == 8
        links = set(f.link_faults)
        for (u, v) in links:
            assert (v, u) in links

    def test_random_link_faults_bidirectional_count_doubles_f(self):
        """Bidirectional draws pick ``count`` physical channels; each
        fails in both directions, so ``|F_L| == 2 * count == f``."""
        m = Mesh((6, 6))
        for count in (1, 3, 9):
            f = random_link_faults(
                m, count, np.random.default_rng(count), bidirectional=True
            )
            assert f.num_link_faults == 2 * count
            assert f.f == 2 * count

    def test_too_many_link_faults(self):
        with pytest.raises(ValueError):
            random_link_faults(Mesh((2, 2)), 100, np.random.default_rng(0))


class TestPatterns:
    def test_rectangular_block(self):
        m = Mesh((8, 8))
        nodes = rectangular_block(m, (2, 3), (2, 2))
        assert sorted(nodes) == [(2, 3), (2, 4), (3, 3), (3, 4)]

    def test_rectangular_block_bounds(self):
        with pytest.raises(ValueError):
            rectangular_block(Mesh((4, 4)), (3, 3), (2, 1))

    def test_cross(self):
        m = Mesh((9, 9))
        nodes = cross_block(m, (4, 4), 2)
        assert (4, 4) in nodes
        assert (2, 4) in nodes and (6, 4) in nodes
        assert (4, 2) in nodes and (4, 6) in nodes
        assert len(nodes) == 9

    def test_cross_clipped_at_border(self):
        nodes = cross_block(Mesh((5, 5)), (0, 0), 2)
        assert all(x >= 0 and y >= 0 for x, y in nodes)

    def test_l_shape(self):
        nodes = l_shaped_block(Mesh((8, 8)), (1, 1), 3, 2)
        assert (1, 1) in nodes and (3, 1) in nodes and (1, 2) in nodes
        assert len(nodes) == 4

    def test_t_shape(self):
        nodes = t_shaped_block(Mesh((8, 8)), (1, 1), 3, 2)
        assert (1, 1) in nodes and (3, 1) in nodes
        assert (2, 2) in nodes and (2, 3) in nodes

    def test_patterns_require_2d(self):
        with pytest.raises(ValueError):
            cross_block(Mesh((4, 4, 4)), (1, 1, 1), 1)
        with pytest.raises(ValueError):
            l_shaped_block(Mesh((4,)), (1,), 1, 1)
