"""Tests for the EXPERIMENTS.md generator (quick sections only)."""

import pytest

from repro.experiments.generate import ALL_SECTIONS, generate


class TestGenerate:
    def test_tables_section(self, tmp_path):
        path = tmp_path / "out.md"
        text = generate(str(path), sections=("tables",))
        assert path.read_text() == text
        assert "Tables 1 & 2" in text
        assert "bit-exact | True" in text
        assert "| lamb set | {(11,10), (10,11)} | [(10, 11), (11, 10)] | True |" in text
        # Unselected sections are absent.
        assert "Fig. 17" not in text

    def test_section3_quick(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "1")
        text = generate(str(tmp_path / "out.md"), sections=("section3",))
        assert "one round vs two rounds" in text
        assert "2698" in text

    def test_artifacts_section_no_compute(self, tmp_path):
        text = generate(str(tmp_path / "out.md"), sections=("artifacts",))
        assert "Combinatorial artifacts" in text

    def test_unknown_section_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generate(str(tmp_path / "out.md"), sections=("fig99",))

    def test_no_write_when_path_empty(self):
        text = generate("", sections=("artifacts",))
        assert text.startswith("# EXPERIMENTS")

    def test_all_sections_constant(self):
        assert "tables" in ALL_SECTIONS and "fig26" in ALL_SECTIONS
        assert len(ALL_SECTIONS) == len(set(ALL_SECTIONS))


class TestMonotonicTimers:
    def test_durations_use_monotonic_clock(self):
        # Regression: generation timing used time.time(), which jumps
        # under NTP slews/clock steps and can report negative or wildly
        # wrong durations.  Durations must come from perf_counter.
        import inspect

        import repro.experiments.generate as gen

        source = inspect.getsource(gen)
        assert "time.time(" not in source
        assert "time.perf_counter(" in source
