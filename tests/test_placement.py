"""Tests for job placement (repro.placement)."""

import itertools

import numpy as np
import pytest

from repro.core import find_lamb_set
from repro.mesh import FaultSet, Mesh, random_node_faults
from repro.placement import (
    compact_placement,
    find_free_submeshes,
    largest_free_cubic_submesh,
    placement_cost,
    usable_grid,
)
from repro.routing import repeated, xy, xyz


@pytest.fixture
def machine():
    mesh = Mesh((10, 10))
    faults = FaultSet(mesh, [(2, 2), (7, 5), (4, 8)])
    return find_lamb_set(faults, repeated(xy(), 2))


class TestUsableGrid:
    def test_excludes_faults_and_lambs(self, machine):
        grid = usable_grid(machine)
        assert grid.sum() == len(machine.survivors())
        for v in machine.faults.node_faults:
            assert not grid[v]
        for v in machine.lambs:
            assert not grid[v]


class TestFreeSubmeshes:
    def test_brute_force_agreement(self, machine):
        """Erosion-based search vs exhaustive window scan."""
        grid = usable_grid(machine)
        for shape in ((2, 2), (3, 2), (4, 4), (1, 5)):
            got = set(find_free_submeshes(grid, shape))
            expect = set()
            for x in range(grid.shape[0] - shape[0] + 1):
                for y in range(grid.shape[1] - shape[1] + 1):
                    if grid[x : x + shape[0], y : y + shape[1]].all():
                        expect.add((x, y))
            assert got == expect, shape

    def test_oversized_shape(self, machine):
        assert find_free_submeshes(usable_grid(machine), (11, 11)) == []

    def test_validation(self, machine):
        grid = usable_grid(machine)
        with pytest.raises(ValueError):
            find_free_submeshes(grid, (2,))
        with pytest.raises(ValueError):
            find_free_submeshes(grid, (0, 2))

    def test_largest_cubic(self):
        mesh = Mesh((8, 8))
        result = find_lamb_set(FaultSet(mesh, [(4, 4)]), repeated(xy(), 2))
        grid = usable_grid(result)
        s = largest_free_cubic_submesh(grid)
        assert s == 4  # the 4x4 quadrant clear of (4,4)
        assert find_free_submeshes(grid, (s, s))
        assert not find_free_submeshes(grid, (s + 1, s + 1))

    def test_largest_cubic_full_mesh(self):
        mesh = Mesh((6, 6))
        result = find_lamb_set(FaultSet(mesh), repeated(xy(), 2))
        assert largest_free_cubic_submesh(usable_grid(result)) == 6

    def test_3d(self):
        mesh = Mesh((6, 6, 6))
        faults = random_node_faults(mesh, 5, np.random.default_rng(1))
        result = find_lamb_set(faults, repeated(xyz(), 2))
        grid = usable_grid(result)
        s = largest_free_cubic_submesh(grid)
        assert 1 <= s <= 6
        assert find_free_submeshes(grid, (s,) * 3)


class TestCompactPlacement:
    def test_placement_size_and_validity(self, machine):
        placement = compact_placement(machine, 12)
        assert len(placement) == 12
        assert len(set(placement)) == 12
        for v in placement:
            assert machine.is_survivor(v)

    def test_too_many_ranks(self, machine):
        with pytest.raises(ValueError):
            compact_placement(machine, 1000)

    def test_empty(self, machine):
        assert compact_placement(machine, 0) == []

    def test_compactness_beats_random(self, machine):
        rng = np.random.default_rng(0)
        survivors = machine.survivors()
        compact = compact_placement(machine, 16)
        picks = rng.choice(len(survivors), size=16, replace=False)
        scattered = [survivors[int(i)] for i in picks]
        assert placement_cost(compact) < placement_cost(scattered)


class TestPlacementCost:
    def test_degenerate(self):
        assert placement_cost([]) == 0.0
        assert placement_cost([(0, 0)]) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        nodes = [tuple(int(x) for x in rng.integers(0, 9, size=3)) for _ in range(10)]
        fast = placement_cost(nodes)
        slow = np.mean(
            [
                sum(abs(a - b) for a, b in zip(u, v))
                for u, v in itertools.combinations(nodes, 2)
            ]
        )
        assert fast == pytest.approx(float(slow))
