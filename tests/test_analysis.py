"""Tests for the analytic models (repro.analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    disjointness_holds,
    expected_one_round_reachable_fraction,
    expected_pair_survival,
    expected_route_length,
    route_hits_fault,
    route_survival_probability,
    set_A,
    set_B,
    simulated_one_round_lower_bound,
)
from repro.core import one_round_expected_lamb_lower_bound
from repro.mesh import Mesh, random_node_faults
from repro.routing import LineFaultIndex, ascending, dor_path, one_round_reachable, xyz


class TestSurvivalProbability:
    def test_boundary_cases(self):
        assert route_survival_probability(100, 0, 10) == 1.0
        assert route_survival_probability(100, 5, 0) == 1.0
        assert route_survival_probability(100, 100, 1) == 0.0

    def test_matches_hypergeometric(self):
        from math import comb

        N, r, f = 50, 7, 5
        expected = comb(N - r, f) / comb(N, f)
        assert route_survival_probability(N, r, f) == pytest.approx(expected)

    def test_monotone_in_f_and_r(self):
        probs_f = [route_survival_probability(64, 6, f) for f in range(0, 20)]
        assert probs_f == sorted(probs_f, reverse=True)
        probs_r = [route_survival_probability(64, r, 5) for r in range(0, 20)]
        assert probs_r == sorted(probs_r, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            route_survival_probability(10, 3, 11)
        with pytest.raises(ValueError):
            route_survival_probability(10, 11, 3)

    @given(st.integers(2, 8), st.integers(0, 12))
    @settings(max_examples=20, deadline=None)
    def test_against_monte_carlo(self, n, f):
        """Closed form vs direct fault sampling on a small 2D mesh."""
        mesh = Mesh((n, n))
        route_nodes = 2 * n - 1  # corner-to-corner route
        f = max(0, min(f, mesh.num_nodes - route_nodes - 1))
        v, w = (0, 0), (n - 1, n - 1)
        analytic = expected_pair_survival(mesh, f, v, w)
        rng = np.random.default_rng(42)
        hits = 0
        trials = 400
        for _ in range(trials):
            faults = random_node_faults(mesh, f, rng)
            idx = LineFaultIndex(faults)
            if one_round_reachable(idx, ascending(2), v, w):
                hits += 1
        assert hits / trials == pytest.approx(analytic, abs=0.09)


class TestExpectedFraction:
    def test_no_faults(self):
        assert expected_one_round_reachable_fraction(Mesh((8, 8)), 0) == 1.0

    def test_decreasing_in_f(self):
        mesh = Mesh((10, 10))
        vals = [
            expected_one_round_reachable_fraction(mesh, f, samples=500)
            for f in (0, 5, 15, 30)
        ]
        assert vals == sorted(vals, reverse=True)

    def test_expected_route_length(self):
        # 1D line of width n: 1 + (n^2-1)/(3n).
        mesh = Mesh((9, 2))
        expected = 1.0 + (81 - 1) / 27 + (4 - 1) / 6
        assert expected_route_length(mesh) == pytest.approx(expected)


class TestTheorem31Apparatus:
    def test_set_sizes_property1(self):
        """|A(u)| >= (y0+1) n when y0 < (n-1)/2, etc."""
        n = 9
        for y0 in range(0, 4):  # below half
            u = (2, y0, 5)
            assert len(set_A(n, u)) >= (y0 + 1) * n
            assert len(set_B(n, u)) >= len(set_A(n, u))
        for y0 in range(5, 9):  # above half
            u = (2, y0, 5)
            assert len(set_B(n, u)) >= (n - y0) * n
            assert len(set_A(n, u)) >= len(set_B(n, u))

    def test_disjointness_property2(self):
        n = 9
        assert disjointness_holds(n, (1, 2, 3), (4, 6, 7))
        # Sharing an x or z coordinate may break disjointness of the
        # B (resp. A) sets — the proof's filtering step exists for
        # this reason.
        assert not disjointness_holds(n, (1, 2, 3), (1, 6, 7))

    def test_route_hits_fault_property3(self):
        """Exhaustively: every v in A(u), w in B(u) routes through u."""
        n = 7
        u = (3, 2, 4)
        A, B = set_A(n, u), set_B(n, u)
        mesh = Mesh.square(3, n)
        for v in sorted(A)[::7]:  # subsample for speed
            for w in sorted(B)[::7]:
                assert route_hits_fault(u, v, w)
                # Cross-check against the actual route.
                assert tuple(u) in dor_path(mesh, xyz(), v, w)

    def test_simulated_bound_dominates_closed_form(self):
        """The Monte-Carlo bound is sharper than (or equal to) the
        closed form — the paper reports 5750 vs 2698 at n = f = 32."""
        n = f = 16
        sim = simulated_one_round_lower_bound(n, f, trials=200, seed=1)
        closed = one_round_expected_lamb_lower_bound(n, f)
        assert sim >= closed

    def test_paper_scale_values(self):
        sim = simulated_one_round_lower_bound(32, 32, trials=50, seed=0)
        # Paper: simulation gives ~5750 (vs closed-form 2698).
        assert 4000 <= sim <= 8000


class TestLatencyModels:
    def test_formulas(self):
        from repro.analysis import store_and_forward_latency, wormhole_latency

        assert wormhole_latency(10, 16) == 25
        assert wormhole_latency(0, 16) == 0
        assert store_and_forward_latency(10, 16) == 160
        with pytest.raises(ValueError):
            wormhole_latency(-1, 4)
        with pytest.raises(ValueError):
            store_and_forward_latency(2, 0)

    def test_wormhole_model_matches_simulator(self):
        """Uncontended simulator latency equals hops + flits - 1."""
        from repro.analysis import wormhole_latency
        from repro.mesh import FaultSet
        from repro.routing import repeated, xy
        from repro.wormhole import WormholeSimulator

        mesh = Mesh((10, 10))
        for (src, dst, flits) in (((0, 0), (7, 4), 6), ((9, 9), (2, 3), 1)):
            sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2))
            msg = sim.send(src, dst, num_flits=flits)
            sim.run()
            assert msg.latency == wormhole_latency(msg.num_hops, flits)

    def test_detour_overhead(self):
        from repro.analysis import two_round_detour_overhead

        mesh = Mesh((10, 10))
        # Intermediate on the geodesic: zero overhead.
        assert two_round_detour_overhead(mesh, (0, 0), (5, 5), (3, 2), 8) == 0
        # Off-geodesic intermediate costs exactly the extra hops.
        assert two_round_detour_overhead(mesh, (0, 0), (5, 5), (9, 0), 8) == 8


class TestConditionedFraction:
    def test_conditioning_raises_probability(self):
        mesh = Mesh((10, 10))
        base = expected_one_round_reachable_fraction(mesh, 10, samples=800)
        cond = expected_one_round_reachable_fraction(
            mesh, 10, samples=800, condition_endpoints_good=True
        )
        assert cond > base

    def test_conditioning_noop_without_faults(self):
        mesh = Mesh((6, 6))
        assert expected_one_round_reachable_fraction(
            mesh, 0, condition_endpoints_good=True
        ) == 1.0
