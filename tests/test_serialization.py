"""Tests for JSON serialization (repro.mesh.serialization)."""

import pytest
from hypothesis import given, settings

from repro.core import build_routing_table, find_lamb_set, is_lamb_set
from repro.mesh import FaultSet, Mesh, Torus
from repro.mesh.serialization import (
    dumps,
    faults_from_dict,
    faults_to_dict,
    lamb_outcome_from_dict,
    lamb_outcome_to_dict,
    loads,
    mesh_from_dict,
    mesh_to_dict,
    routing_table_from_dict,
    routing_table_to_dict,
)
from repro.routing import repeated, xy

from conftest import faulty_meshes


class TestMeshRoundTrip:
    def test_mesh(self):
        m = Mesh((3, 4, 5))
        assert mesh_from_dict(mesh_to_dict(m)) == m

    def test_torus(self):
        t = Torus((8, 8))
        back = mesh_from_dict(mesh_to_dict(t))
        assert back == t
        assert back.is_torus

    def test_mesh_and_torus_distinct(self):
        assert mesh_from_dict(mesh_to_dict(Mesh((4, 4)))) != Torus((4, 4))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            mesh_from_dict({"type": "klein-bottle", "widths": [4, 4]})
        with pytest.raises(ValueError):
            mesh_from_dict({"type": "mesh"})


class TestFaultRoundTrip:
    @given(faulty_meshes())
    @settings(max_examples=25, deadline=None)
    def test_round_trip(self, faults):
        back = faults_from_dict(loads(dumps(faults_to_dict(faults))))
        assert back == faults

    def test_version_check(self):
        d = faults_to_dict(FaultSet(Mesh((4, 4))))
        d["version"] = 99
        with pytest.raises(ValueError):
            faults_from_dict(d)

    def test_invalid_fault_rejected_on_load(self):
        d = faults_to_dict(FaultSet(Mesh((4, 4))))
        d["node_faults"] = [[9, 9]]
        with pytest.raises(ValueError):
            faults_from_dict(d)


class TestLambOutcomeRoundTrip:
    def test_round_trip_and_revalidation(self, paper_faults):
        orderings = repeated(xy(), 2)
        result = find_lamb_set(paper_faults, orderings)
        record = loads(dumps(lamb_outcome_to_dict(result)))
        back = lamb_outcome_from_dict(record)
        assert back["faults"] == paper_faults
        assert back["orderings"] == orderings
        assert back["lambs"] == set(result.lambs)
        assert back["cover_weight"] == result.cover_weight
        assert is_lamb_set(back["faults"], back["orderings"], back["lambs"])

    def test_faulty_lamb_rejected(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        record = lamb_outcome_to_dict(result)
        record["lambs"].append([9, 1])  # a faulty node
        with pytest.raises(ValueError):
            lamb_outcome_from_dict(record)

    def test_out_of_mesh_lamb_rejected(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        record = lamb_outcome_to_dict(result)
        record["lambs"].append([99, 99])
        with pytest.raises(ValueError):
            lamb_outcome_from_dict(record)


class TestRoutingTableRoundTrip:
    def _table(self, paper_faults, n_pairs=12):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        survivors = result.survivors()
        pairs = [
            (survivors[i], survivors[-1 - i]) for i in range(n_pairs)
        ]
        return build_routing_table(result, pairs=pairs), result

    def test_round_trip_entries(self, paper_faults):
        table, result = self._table(paper_faults)
        record = loads(dumps(routing_table_to_dict(table)))
        back = routing_table_from_dict(record)
        assert len(back) == len(table)
        assert back.policy == table.policy
        orig = {(e.source, e.dest): e for e in table.entries()}
        for e in back.entries():
            assert orig[(e.source, e.dest)] == e

    def test_round_trip_with_live_result(self, paper_faults):
        table, result = self._table(paper_faults, n_pairs=4)
        back = routing_table_from_dict(
            routing_table_to_dict(table), result=result
        )
        assert {(e.source, e.dest) for e in back.entries()} == {
            (e.source, e.dest) for e in table.entries()
        }
        # The restored table is live: it can resolve *new* routes too.
        survivors = result.survivors()
        entry = back.lookup(survivors[5], survivors[17])
        assert entry.hops >= 1

    def test_mismatched_result_rejected(self, paper_faults):
        table, _ = self._table(paper_faults, n_pairs=2)
        other = find_lamb_set(
            FaultSet(Mesh((12, 12)), [(3, 3)]), repeated(xy(), 2)
        )
        with pytest.raises(ValueError):
            routing_table_from_dict(routing_table_to_dict(table), result=other)

    def test_non_survivor_entry_rejected(self, paper_faults):
        table, result = self._table(paper_faults, n_pairs=2)
        record = routing_table_to_dict(table)
        bad = dict(record["entries"][0])
        bad["source"] = [9, 1]  # a faulty node
        record["entries"].append(bad)
        with pytest.raises(ValueError):
            routing_table_from_dict(record)

    def test_version_check(self, paper_faults):
        table, _ = self._table(paper_faults, n_pairs=1)
        record = routing_table_to_dict(table)
        record["version"] = 99
        with pytest.raises(ValueError):
            routing_table_from_dict(record)
