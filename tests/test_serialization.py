"""Tests for JSON serialization (repro.mesh.serialization)."""

import pytest
from hypothesis import given, settings

from repro.core import find_lamb_set, is_lamb_set
from repro.mesh import FaultSet, Mesh, Torus
from repro.mesh.serialization import (
    dumps,
    faults_from_dict,
    faults_to_dict,
    lamb_outcome_from_dict,
    lamb_outcome_to_dict,
    loads,
    mesh_from_dict,
    mesh_to_dict,
)
from repro.routing import repeated, xy

from conftest import faulty_meshes


class TestMeshRoundTrip:
    def test_mesh(self):
        m = Mesh((3, 4, 5))
        assert mesh_from_dict(mesh_to_dict(m)) == m

    def test_torus(self):
        t = Torus((8, 8))
        back = mesh_from_dict(mesh_to_dict(t))
        assert back == t
        assert back.is_torus

    def test_mesh_and_torus_distinct(self):
        assert mesh_from_dict(mesh_to_dict(Mesh((4, 4)))) != Torus((4, 4))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            mesh_from_dict({"type": "klein-bottle", "widths": [4, 4]})
        with pytest.raises(ValueError):
            mesh_from_dict({"type": "mesh"})


class TestFaultRoundTrip:
    @given(faulty_meshes())
    @settings(max_examples=25, deadline=None)
    def test_round_trip(self, faults):
        back = faults_from_dict(loads(dumps(faults_to_dict(faults))))
        assert back == faults

    def test_version_check(self):
        d = faults_to_dict(FaultSet(Mesh((4, 4))))
        d["version"] = 99
        with pytest.raises(ValueError):
            faults_from_dict(d)

    def test_invalid_fault_rejected_on_load(self):
        d = faults_to_dict(FaultSet(Mesh((4, 4))))
        d["node_faults"] = [[9, 9]]
        with pytest.raises(ValueError):
            faults_from_dict(d)


class TestLambOutcomeRoundTrip:
    def test_round_trip_and_revalidation(self, paper_faults):
        orderings = repeated(xy(), 2)
        result = find_lamb_set(paper_faults, orderings)
        record = loads(dumps(lamb_outcome_to_dict(result)))
        back = lamb_outcome_from_dict(record)
        assert back["faults"] == paper_faults
        assert back["orderings"] == orderings
        assert back["lambs"] == set(result.lambs)
        assert back["cover_weight"] == result.cover_weight
        assert is_lamb_set(back["faults"], back["orderings"], back["lambs"])

    def test_faulty_lamb_rejected(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        record = lamb_outcome_to_dict(result)
        record["lambs"].append([9, 1])  # a faulty node
        with pytest.raises(ValueError):
            lamb_outcome_from_dict(record)

    def test_out_of_mesh_lamb_rejected(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        record = lamb_outcome_to_dict(result)
        record["lambs"].append([99, 99])
        with pytest.raises(ValueError):
            lamb_outcome_from_dict(record)
