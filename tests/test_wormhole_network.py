"""Tests for virtual-channel bookkeeping (repro.wormhole.network) and
message state (repro.wormhole.packets)."""

import pytest

from repro.mesh import FaultSet, Mesh
from repro.wormhole import Hop, Message, VirtualNetwork


def make_net(**kw):
    m = Mesh((4, 4))
    faults = FaultSet(m, [(2, 2)])
    defaults = dict(num_vcs=2, buffer_flits=2)
    defaults.update(kw)
    return VirtualNetwork(faults, **defaults)


class TestValidation:
    def test_valid_hop(self):
        net = make_net()
        net.validate_hop(Hop((0, 0), (0, 1), 0))

    def test_rejects_bad_vc(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.validate_hop(Hop((0, 0), (0, 1), 2))
        with pytest.raises(ValueError):
            net.validate_hop(Hop((0, 0), (0, 1), -1))

    def test_rejects_non_link(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.validate_hop(Hop((0, 0), (1, 1), 0))

    def test_rejects_faulty_node(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.validate_hop(Hop((2, 1), (2, 2), 0))

    def test_rejects_faulty_link(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, (), [((0, 0), (0, 1))])
        net = VirtualNetwork(faults, num_vcs=1)
        with pytest.raises(ValueError):
            net.validate_hop(Hop((0, 0), (0, 1), 0))
        net.validate_hop(Hop((0, 1), (0, 0), 0))  # reverse direction fine

    def test_constructor_validation(self):
        m = Mesh((4, 4))
        with pytest.raises(ValueError):
            VirtualNetwork(FaultSet(m), num_vcs=0)
        with pytest.raises(ValueError):
            VirtualNetwork(FaultSet(m), num_vcs=1, buffer_flits=0)


class TestOwnership:
    def test_acquire_release(self):
        net = make_net()
        hop = Hop((0, 0), (0, 1), 0)
        assert net.owner(hop) is None
        assert net.try_acquire(hop, 1)
        assert net.owner(hop) == 1
        assert net.try_acquire(hop, 1)  # idempotent for the owner
        assert not net.try_acquire(hop, 2)
        net.release(hop, 1)
        assert net.owner(hop) is None
        assert net.try_acquire(hop, 2)

    def test_vcs_are_independent(self):
        net = make_net()
        assert net.try_acquire(Hop((0, 0), (0, 1), 0), 1)
        assert net.try_acquire(Hop((0, 0), (0, 1), 1), 2)

    def test_release_requires_owner(self):
        net = make_net()
        hop = Hop((0, 0), (0, 1), 0)
        net.try_acquire(hop, 1)
        with pytest.raises(RuntimeError):
            net.release(hop, 2)


class TestBuffers:
    def test_capacity(self):
        net = make_net(buffer_flits=2)
        hop = Hop((0, 0), (0, 1), 0)
        assert net.buffer_has_space(hop)
        net.buffer_push(hop)
        net.buffer_push(hop)
        assert not net.buffer_has_space(hop)
        with pytest.raises(RuntimeError):
            net.buffer_push(hop)
        net.buffer_pop(hop)
        assert net.buffer_has_space(hop)

    def test_pop_empty_raises(self):
        net = make_net()
        with pytest.raises(RuntimeError):
            net.buffer_pop(Hop((0, 0), (0, 1), 0))


class TestCycleBandwidth:
    def test_one_flit_per_cycle(self):
        net = make_net()
        hop = Hop((0, 0), (0, 1), 0)
        assert net.channel_free_this_cycle(hop)
        net.mark_channel_used(hop)
        assert not net.channel_free_this_cycle(hop)
        net.new_cycle()
        assert net.channel_free_this_cycle(hop)


class TestMessage:
    def test_construction(self):
        hops = [Hop((0, 0), (1, 0), 0), Hop((1, 0), (1, 1), 1)]
        m = Message(0, (0, 0), (1, 1), 4, hops, inject_cycle=3)
        assert m.num_hops == 2
        assert m.head_pos == -1 and m.tail_pos == -1
        assert m.next_hop_index() == 0
        assert not m.is_delivered
        assert m.latency is None
        assert m.path_nodes() == [(0, 0), (1, 0), (1, 1)]

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            Message(0, (0, 0), (0, 1), 0, [], inject_cycle=0)

    def test_latency(self):
        m = Message(0, (0, 0), (0, 1), 1, [Hop((0, 0), (0, 1), 0)], inject_cycle=5)
        m.deliver_cycle = 9
        assert m.latency == 4
        assert m.is_delivered
