"""Serial-vs-parallel equivalence of the trial engine.

Every sweep repeats an independent seeded computation: trial ``t``
draws all randomness from ``(seed, tag, t)``, so fanning trials across
a process pool must be *bit-identical* to the serial loop on every
deterministic key (wall-clock ``seconds`` keys are machine timings and
excluded).  These tests pin that property for the lamb trials, the
chaos sweeps and the EXPERIMENTS.md generator, plus the engine's own
plumbing (worker resolution, chunking, ambient installation).
"""

import os
import signal
import time

import pytest

from repro.experiments.chaos_experiments import (
    fault_arrival_sweep,
    reconfiguration_latency_sweep,
)
from repro.experiments.generate import generate
from repro.experiments.harness import SweepResult, TrialSeries, lamb_trials
from repro.experiments.parallel import (
    TrialEngine,
    WorkerCrashError,
    available_cpu_count,
    engine_jobs,
    get_default_engine,
    is_picklable,
    resolve_executor,
    resolve_jobs,
    set_default_jobs,
    worker_memo,
)
from repro.mesh import Mesh

#: Keys that record machine wall-clock time: never bit-identical.
TIMING_KEYS = frozenset(
    {"seconds", "seconds_2d", "seconds_3d", "epoch_seconds",
     "worst_epoch_seconds", "total_seconds"}
)


def _deterministic(series: TrialSeries):
    return {
        k: v for k, v in series.values.items() if k not in TIMING_KEYS
    }


def _sweep_deterministic(result: SweepResult):
    return [(s.x, _deterministic(s)) for s in result.series]


class TestResolveExecutor:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert resolve_executor("process") == "process"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert resolve_executor(None) == "thread"

    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor(None) == "process"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gevent")

    def test_available_cpu_count_positive(self):
        n = available_cpu_count()
        assert isinstance(n, int) and n >= 1

    def test_requires_pickling_tracks_backend(self):
        with TrialEngine(jobs=1, executor="process") as eng:
            assert eng.requires_pickling
        with TrialEngine(jobs=1, executor="thread") as eng:
            assert not eng.requires_pickling


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestEngine:
    def test_chunks_cover_range_in_order(self):
        eng = TrialEngine(jobs=3, chunks_per_worker=2)
        chunks = eng.chunk_indices(17)
        flat = [t for chunk in chunks for t in chunk]
        assert flat == list(range(17))
        eng.close()

    def test_run_trials_orders_results(self):
        from repro.experiments import parallel as par

        with TrialEngine(jobs=2) as eng:
            out = eng.run_trials(_echo_worker, 9, {"base": 100})
        assert out == [100 + t for t in range(9)]

    def test_serial_never_spawns_pool(self):
        with TrialEngine(jobs=1) as eng:
            eng.run_trials(_echo_worker, 4, {"base": 0})
            assert eng._pool is None

    def test_worker_memo_reuses(self):
        calls = []
        a = worker_memo(("t", 1), lambda: calls.append(1) or object())
        b = worker_memo(("t", 1), lambda: calls.append(1) or object())
        assert a is b and len(calls) == 1

    def test_is_picklable(self):
        assert is_picklable(None)
        assert is_picklable(_echo_worker)
        assert not is_picklable(lambda p, t: t)

    def test_is_picklable_requires_round_trip(self):
        # Regression: is_picklable used to test only pickle.dumps, so
        # an object that serializes fine but *fails to deserialize* in
        # the worker process passed the gate and crashed the pool
        # mid-sweep.
        assert not is_picklable(_DumpsButNoLoads())

    def test_is_picklable_does_not_swallow_unrelated_errors(self):
        # Only pickling-shaped failures mean "not picklable"; a bug in
        # the object's __getstate__ raising an unrelated error type
        # must propagate, not be reported as a serial fallback.
        with pytest.raises(ZeroDivisionError):
            is_picklable(_BrokenGetstate())

    def test_ambient_engine_install_and_restore(self):
        base = get_default_engine()
        with engine_jobs(2) as eng:
            assert get_default_engine() is eng
            assert eng.jobs == 2
        assert get_default_engine() is not eng
        set_default_jobs(1)  # restore a known ambient for other tests
        assert get_default_engine().jobs == 1
        assert base.jobs >= 1


def _echo_worker(payload, t):
    return payload["base"] + t


def _explode():
    import pickle

    raise pickle.UnpicklingError("reconstruction fails at load time")


class _DumpsButNoLoads:
    """Pickles fine; blows up when unpickled in the worker."""

    def __reduce__(self):
        return (_explode, ())


class _BrokenGetstate:
    """A bug (not a pickling limitation) during serialization."""

    def __getstate__(self):
        return 1 // 0


def _crash_once_worker(payload, t):
    """Kills its own worker process the first time it sees the victim
    trial (a sentinel file distinguishes the attempts); computes
    normally on retry.  Simulates a transient worker crash."""
    sentinel = os.path.join(payload["dir"], "crashed")
    if t == payload["victim"] and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return payload["base"] + t


def _always_crash_worker(payload, t):
    """Kills the worker on the victim trial, every attempt."""
    if t == payload["victim"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return t


def _stall_once_worker(payload, t):
    """Wedges (sleeps far past the chunk timeout) the first time it
    sees the victim trial; fast on retry."""
    sentinel = os.path.join(payload["dir"], "stalled")
    if t == payload["victim"] and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        time.sleep(payload["stall"])
    return t


def _sleep_worker(payload, t):
    time.sleep(payload["sleep"])
    return t


class TestThreadExecutor:
    def test_thread_results_match_serial(self):
        with TrialEngine(jobs=1) as eng:
            serial = eng.run_trials(_echo_worker, 9, {"base": 10})
        with TrialEngine(jobs=3, executor="thread") as eng:
            fanned = eng.run_trials(_echo_worker, 9, {"base": 10})
        assert serial == fanned == [10 + t for t in range(9)]

    def test_thread_pool_runs_unpicklable_workers(self):
        # The thread executor shares the address space, so a closure —
        # which the process path must refuse — fans out fine.
        seen = []

        def worker(payload, t):
            seen.append(t)
            return t * 2

        with TrialEngine(jobs=2, executor="thread") as eng:
            out = eng.run_trials(worker, 6, {})
        assert out == [t * 2 for t in range(6)]
        assert sorted(seen) == list(range(6))

    def test_lamb_trials_fan_unpicklable_extra_over_threads(self):
        # With an ambient *thread* engine the harness keeps the
        # parallel path even for an unpicklable callback (the process
        # path would fall back serially).
        mesh = Mesh.square(2, 10)

        def extra(r):
            return {"twice": 2.0 * len(r.lambs)}

        serial = lamb_trials(mesh, 4, trials=4, seed=1, jobs=1, extra=extra)
        with engine_jobs(3, executor="thread"):
            fanned = lamb_trials(mesh, 4, trials=4, seed=1, extra=extra)
        assert _deterministic(serial) == _deterministic(fanned)
        assert "twice" in fanned.values


class TestAccounting:
    def test_serial_run_is_accounted(self):
        with TrialEngine(jobs=1) as eng:
            eng.run_trials(_echo_worker, 5, {"base": 0})
            acct = eng.last_run
        assert acct.trials_expected == acct.trials_completed == 5
        assert acct.chunks_total == 1
        assert acct.all_accounted
        assert acct.as_dict()["all_accounted"] is True

    def test_parallel_run_is_accounted(self):
        with TrialEngine(jobs=2, executor="thread") as eng:
            eng.run_trials(_echo_worker, 10, {"base": 0})
            acct = eng.last_run
            assert acct.chunks_total == len(eng.chunk_indices(10))
        assert acct.all_accounted and acct.trials_completed == 10
        assert acct.pool_rebuilds == 0 and acct.chunk_retries == 0
        assert acct.executor == "thread" and acct.jobs == 2


class TestCrashRecovery:
    def test_killed_worker_chunk_is_retried_not_lost(self, tmp_path):
        """ISSUE acceptance: a worker killed mid-chunk must not lose
        or double-count any trial — the chunk is retried on a fresh
        pool and every trial lands exactly once, in order."""
        payload = {"dir": str(tmp_path), "victim": 0, "base": 50}
        with TrialEngine(jobs=2, executor="process") as eng:
            out = eng.run_trials(_crash_once_worker, 8, payload)
            acct = eng.last_run
        assert out == [50 + t for t in range(8)]
        assert acct.all_accounted
        assert acct.pool_rebuilds >= 1
        assert acct.chunk_retries >= 1

    def test_persistent_crash_raises_typed_error(self):
        with TrialEngine(
            jobs=2, executor="process", max_crash_retries=1
        ) as eng:
            with pytest.raises(WorkerCrashError) as err:
                eng.run_trials(_always_crash_worker, 8, {"victim": 0})
        # Nothing silently dropped: the error names the unfinished
        # chunks, and the accounting shows the shortfall.
        pending = [t for ts in err.value.pending_chunks for t in ts]
        assert 0 in pending
        assert not eng.last_run.all_accounted
        assert eng.last_run.pool_rebuilds == 1

    def test_wedged_chunk_times_out_and_retries(self, tmp_path):
        payload = {"dir": str(tmp_path), "victim": 0, "stall": 60.0}
        with TrialEngine(
            jobs=2, executor="process", chunk_timeout=3.0
        ) as eng:
            out = eng.run_trials(_stall_once_worker, 6, payload)
            acct = eng.last_run
        assert out == list(range(6))
        assert acct.all_accounted
        assert acct.pool_rebuilds >= 1

    def test_thread_timeout_is_fatal(self):
        # A stuck thread cannot be reclaimed, so the timeout surfaces
        # immediately as the typed error instead of a retry loop.
        with TrialEngine(
            jobs=2, executor="thread", chunk_timeout=0.1
        ) as eng:
            with pytest.raises(WorkerCrashError, match="thread"):
                eng.run_trials(_sleep_worker, 4, {"sleep": 1.0})
        assert not eng.last_run.all_accounted


class TestBitIdenticalSweeps:
    def test_lamb_trials(self):
        mesh = Mesh.square(2, 12)
        serial = lamb_trials(mesh, 6, trials=8, seed=3, tag=2, jobs=1)
        fanned = lamb_trials(mesh, 6, trials=8, seed=3, tag=2, jobs=4)
        assert _deterministic(serial) == _deterministic(fanned)
        assert set(serial.values) == set(fanned.values)  # incl. seconds

    def test_lamb_trials_3d(self):
        mesh = Mesh.square(3, 6)
        serial = lamb_trials(mesh, 5, trials=6, seed=0, tag=9, jobs=1)
        fanned = lamb_trials(mesh, 5, trials=6, seed=0, tag=9, jobs=3)
        assert _deterministic(serial) == _deterministic(fanned)

    def test_unpicklable_extra_falls_back_serially(self):
        mesh = Mesh.square(2, 10)
        extra = lambda r: {"twice": 2.0 * len(r.lambs)}  # noqa: E731
        serial = lamb_trials(mesh, 4, trials=4, seed=1, jobs=1, extra=extra)
        fanned = lamb_trials(mesh, 4, trials=4, seed=1, jobs=4, extra=extra)
        assert _deterministic(serial) == _deterministic(fanned)
        assert "twice" in fanned.values

    def test_fault_arrival_sweep(self):
        kw = dict(event_counts=(0, 2), trials=2, seed=1, num_messages=40)
        serial = fault_arrival_sweep(jobs=1, **kw)
        fanned = fault_arrival_sweep(jobs=4, **kw)
        assert _sweep_deterministic(serial) == _sweep_deterministic(fanned)

    def test_reconfiguration_latency_sweep(self):
        kw = dict(event_counts=(1, 2), trials=2, seed=0, num_messages=30)
        serial = reconfiguration_latency_sweep(jobs=1, **kw)
        fanned = reconfiguration_latency_sweep(jobs=4, **kw)
        assert _sweep_deterministic(serial) == _sweep_deterministic(fanned)


def _strip_timing_lines(text: str):
    return [
        line
        for line in text.splitlines()
        if "generation time" not in line
    ]


class TestGenerateReport:
    def test_report_bytes_identical_across_job_counts(self, tmp_path):
        """EXPERIMENTS.md sections must agree byte-for-byte between
        jobs=1 and jobs=2 (modulo the wall-clock footer)."""
        a = generate(path=str(tmp_path / "a.md"), seed=0,
                     sections=("tables", "section3"), jobs=1)
        b = generate(path=str(tmp_path / "b.md"), seed=0,
                     sections=("tables", "section3"), jobs=2)
        assert _strip_timing_lines(a) == _strip_timing_lines(b)

    def test_unknown_section_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown sections"):
            generate(path=str(tmp_path / "x.md"), sections=("nope",))


class TestHarnessGuards:
    def test_column_unknown_agg_raises_value_error(self):
        result = SweepResult("f", "d", "x")
        series = TrialSeries(x=1.0)
        series.add(lambs=3.0)
        result.series.append(series)
        assert result.column("lambs", "avg") == [3.0]
        with pytest.raises(ValueError, match="unknown agg"):
            result.column("lambs", "median")

    def test_ci95_available(self):
        series = TrialSeries(x=0.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            series.add(lambs=v)
        assert series.ci95("lambs") > 0.0
