"""Tests for wormhole event tracing (repro.wormhole.trace)."""

import warnings

import numpy as np
import pytest

from repro.mesh import FaultSet, Mesh
from repro.routing import repeated, xy
from repro.wormhole import (
    SimulationError,
    TraceEvent,
    Tracer,
    TraceTruncatedError,
    WormholeSimulator,
    uniform_random_traffic,
)


@pytest.fixture
def traced_run():
    mesh = Mesh((8, 8))
    faults = FaultSet(mesh, [(3, 3)])
    tracer = Tracer()
    sim = WormholeSimulator(faults, repeated(xy(), 2), tracer=tracer, seed=0)
    rng = np.random.default_rng(1)
    endpoints = faults.good_nodes()
    for inj in uniform_random_traffic(endpoints, 40, rng, num_flits=4,
                                      inject_window=20):
        sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
    sim.run()
    return sim, tracer


class TestEventStream:
    def test_event_counts(self, traced_run):
        sim, tracer = traced_run
        assert len(tracer.of_kind("inject")) == 40
        assert len(tracer.of_kind("deliver")) == 40
        # Every flit crosses every hop exactly once.
        expected_flits = sum(
            m.num_flits * m.num_hops for m in sim.messages.values()
        )
        assert len(tracer.of_kind("flit")) == expected_flits

    def test_acquire_release_balance(self, traced_run):
        sim, tracer = traced_run
        acq = len(tracer.of_kind("acquire"))
        rel = len(tracer.of_kind("release"))
        assert acq == rel
        # One acquisition per hop per message.
        assert acq == sum(m.num_hops for m in sim.messages.values())

    def test_channel_bandwidth_invariant(self, traced_run):
        _, tracer = traced_run
        assert tracer.max_flits_per_channel_cycle() == 1

    def test_ownership_windows_exclusive(self, traced_run):
        _, tracer = traced_run
        assert tracer.windows_are_exclusive()
        for windows in tracer.ownership_windows().values():
            for (start, end, _) in windows:
                assert start >= 0 and end >= start  # all closed cleanly

    def test_channel_loads_match_flit_events(self, traced_run):
        _, tracer = traced_run
        loads = tracer.channel_loads()
        assert sum(loads.values()) == len(tracer.of_kind("flit"))
        # Flit traversals per (channel, vc) are multiples of nothing in
        # general, but every recorded channel has positive load.
        assert all(v > 0 for v in loads.values())

    def test_capacity_cap(self):
        tracer = Tracer(capacity=3)
        with pytest.warns(RuntimeWarning, match="capacity 3 reached"):
            for i in range(10):
                tracer.record(TraceEvent(i, "inject", i))
        assert len(tracer.events) == 3
        assert tracer.dropped == 7
        assert tracer.truncated

    def test_capacity_warns_once(self):
        tracer = Tracer(capacity=1)
        tracer.record(TraceEvent(0, "inject", 0))
        with pytest.warns(RuntimeWarning):
            tracer.record(TraceEvent(1, "inject", 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            tracer.record(TraceEvent(2, "inject", 2))
        assert tracer.dropped == 2

    def test_truncated_trace_refuses_to_certify_invariants(self):
        # Regression: a capacity-1 tracer used to silently drop every
        # event past the first and still *certify* the invariants over
        # the partial stream (e.g. exclusivity looked fine because the
        # conflicting acquire was never recorded).
        tracer = Tracer(capacity=1)
        with pytest.warns(RuntimeWarning):
            tracer.record(TraceEvent(0, "acquire", 0, src=(0,), dst=(1,),
                                     vc=0))
            tracer.record(TraceEvent(1, "acquire", 1, src=(0,), dst=(1,),
                                     vc=0))
        with pytest.raises(TraceTruncatedError):
            tracer.max_flits_per_channel_cycle()
        with pytest.raises(TraceTruncatedError):
            tracer.ownership_windows()
        with pytest.raises(TraceTruncatedError) as exc:
            tracer.windows_are_exclusive()
        assert exc.value.dropped == 1
        assert exc.value.recorded == 1
        # Part of the SimulationError taxonomy, so callers that handle
        # simulator failures catch it without a new except clause.
        assert isinstance(exc.value, SimulationError)

    def test_complete_trace_still_certifies(self):
        tracer = Tracer(capacity=10)
        tracer.record(TraceEvent(0, "acquire", 0, src=(0,), dst=(1,), vc=0))
        tracer.record(TraceEvent(2, "release", 0, src=(0,), dst=(1,), vc=0))
        assert not tracer.truncated
        assert tracer.windows_are_exclusive()

    def test_delivery_order_consistent_with_stats(self, traced_run):
        sim, tracer = traced_run
        delivered = {e.msg_id for e in tracer.of_kind("deliver")}
        assert delivered == {
            m.msg_id for m in sim.messages.values() if m.is_delivered
        }
