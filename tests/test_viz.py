"""Tests for ASCII rendering (repro.viz.ascii_art)."""

import pytest

from repro.core import find_lamb_set, find_ses_partition
from repro.mesh import FaultSet, Mesh
from repro.routing import FaultGrids, find_k_round_route, repeated, xy
from repro.viz import render_lambs, render_mesh, render_partition, render_route


@pytest.fixture
def small_faults():
    return FaultSet(Mesh((5, 4)), [(2, 1), (4, 3)])


class TestRenderMesh:
    def test_symbols(self, small_faults):
        text = render_mesh(small_faults, axes=False)
        lines = text.strip().splitlines()
        assert len(lines) == 4  # ny rows
        assert lines[1].split()[2] == "X"  # (2, 1)
        assert lines[3].split()[4] == "X"  # (4, 3)
        assert lines[0].split()[0] == "."

    def test_axes_labels(self, small_faults):
        text = render_mesh(small_faults, axes=True)
        assert text.splitlines()[0].strip().startswith("0 1 2 3 4")

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            render_mesh(FaultSet(Mesh((3, 3, 3))))

    def test_paper_orientation(self, paper_faults):
        """Node (0,0) upper-left, (11,0) upper-right (Section 2.2)."""
        text = render_mesh(paper_faults, axes=False)
        lines = text.strip().splitlines()
        assert lines[1].split()[9] == "X"   # (9, 1)
        assert lines[6].split()[11] == "X"  # (11, 6)
        assert lines[10].split()[10] == "X"  # (10, 10)


class TestRenderPartition:
    def test_labels_cover_good_nodes(self, paper_faults):
        ses = find_ses_partition(paper_faults, xy())
        text = render_partition(paper_faults, ses, axes=False)
        cells = [c for line in text.strip().splitlines() for c in line.split()]
        assert cells.count("X") == 3
        assert " " not in cells
        assert len(set(cells) - {"X"}) == 9  # one label per SES

    def test_representatives_marked(self, paper_faults):
        ses = find_ses_partition(paper_faults, xy())
        text = render_partition(
            paper_faults, ses, show_representatives=True, axes=False
        )
        assert "@" in text  # digit labels mark reps with '@'

    def test_too_many_sets(self):
        mesh = Mesh((2, 2))
        faults = FaultSet(mesh)
        from repro.mesh import Rect

        rects = [Rect.single(mesh, (0, 0))] * 100
        with pytest.raises(ValueError):
            render_partition(faults, rects)


class TestRenderRoute:
    def test_route_markers(self, paper_faults):
        orderings = repeated(xy(), 2)
        paths = find_k_round_route(
            FaultGrids(paper_faults), orderings, (0, 1), (9, 2)
        )
        text = render_route(paper_faults, paths, axes=False)
        assert "S" in text and "D" in text and "X" in text
        assert "1" in text  # round-1 markers

    def test_rejects_empty(self, paper_faults):
        with pytest.raises(ValueError):
            render_route(paper_faults, [])


class TestRenderLambs:
    def test_lamb_markers(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        text = render_lambs(paper_faults, result.lambs, axes=False)
        cells = [c for line in text.strip().splitlines() for c in line.split()]
        assert cells.count("L") == 2
        assert cells.count("X") == 3

    def test_rejects_faulty_lamb(self, paper_faults):
        with pytest.raises(ValueError):
            render_lambs(paper_faults, [(9, 1)])

    def test_docstring_example(self):
        text = render_mesh(FaultSet(Mesh((3, 3)), [(1, 1)]), axes=False)
        assert text == ". . .\n. X .\n. . .\n"
