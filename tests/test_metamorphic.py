"""Metamorphic properties: symmetries and monotonicities the system
must respect regardless of instance details."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_lamb_set, find_ses_partition
from repro.mesh import FaultSet, Mesh
from repro.routing import (
    FaultGrids,
    Ordering,
    ascending,
    reach_set_k_rounds,
    repeated,
    xy,
)

from conftest import faulty_meshes, faulty_meshes_with_ordering


class TestFaultMonotonicity:
    @given(faulty_meshes(max_d=2, max_width=6, allow_link_faults=False))
    @settings(max_examples=20, deadline=None)
    def test_more_faults_never_extend_reach(self, faults):
        """Adding a fault can only shrink every reach set."""
        mesh = faults.mesh
        if faults.num_node_faults == 0:
            return
        smaller = FaultSet(mesh, faults.node_faults[:-1])
        orderings = repeated(ascending(mesh.d), 2)
        g_small = FaultGrids(smaller)
        g_big = FaultGrids(faults)
        for v in smaller.good_nodes()[:6]:
            if faults.node_is_faulty(v):
                continue
            big = reach_set_k_rounds(g_big, orderings, v)
            small = reach_set_k_rounds(g_small, orderings, v)
            assert (big <= small).all()

    @given(faulty_meshes(max_d=2, max_width=5, max_node_faults=4,
                         allow_link_faults=False))
    @settings(max_examples=15, deadline=None)
    def test_one_extra_fault_changes_optimum_by_at_most_one(self, faults):
        """λ(F) <= λ(F ∪ {v}) + 1: a lamb set for the larger fault set
        plus the newly faulted node is a lamb set for the smaller."""
        mesh = faults.mesh
        if faults.num_node_faults == 0:
            return
        smaller = FaultSet(mesh, faults.node_faults[:-1])
        orderings = repeated(ascending(mesh.d), 2)
        lam_small = find_lamb_set(smaller, orderings, method="general-exact",
                                  wvc_max_vertices=60)
        lam_big = find_lamb_set(faults, orderings, method="general-exact",
                                wvc_max_vertices=60)
        assert lam_small.size <= lam_big.size + 1


class TestRoundMonotonicity:
    @given(faulty_meshes(max_d=2, max_width=5, max_node_faults=4,
                         allow_link_faults=False))
    @settings(max_examples=12, deadline=None)
    def test_optimal_lamb_size_nonincreasing_in_k(self, faults):
        """For fixed M, F, pi: λ(M, k, F) can only decrease as k grows
        (remark after Definition 2.7)."""
        orderings = [repeated(ascending(faults.mesh.d), k) for k in (1, 2, 3)]
        sizes = [
            find_lamb_set(faults, o, method="general-exact",
                          wvc_max_vertices=60).size
            for o in orderings
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]


def _permute_instance(faults: FaultSet, perm):
    """Apply a dimension permutation to mesh + faults."""
    mesh = faults.mesh
    new_mesh = Mesh(tuple(mesh.widths[p] for p in perm))
    nodes = [tuple(v[p] for p in perm) for v in faults.node_faults]
    links = [
        (tuple(u[p] for p in perm), tuple(w[p] for p in perm))
        for (u, w) in faults.link_faults
    ]
    return FaultSet(new_mesh, nodes, links)


class TestDimensionPermutationSymmetry:
    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=20, deadline=None)
    def test_lamb_size_invariant(self, fm):
        """Relabeling dimensions consistently (mesh widths, fault
        coordinates, and the routing order) cannot change the lamb
        count or partition size."""
        faults, pi = fm
        d = faults.mesh.d
        perm = tuple(reversed(range(d)))  # a fixed nontrivial relabeling
        inv = [0] * d
        for i, p in enumerate(perm):
            inv[p] = i
        permuted = _permute_instance(faults, perm)
        # The ordering must follow the relabeling: routed dim pi[t]
        # becomes inv[pi[t]].
        pi2 = Ordering(tuple(inv[j] for j in pi.perm))
        a = find_lamb_set(faults, repeated(pi, 2))
        b = find_lamb_set(permuted, repeated(pi2, 2))
        assert a.size == b.size
        assert a.num_ses == b.num_ses
        assert a.num_des == b.num_des
        # The relabeled lamb set is a valid lamb set for the relabeled
        # instance (exact equality would over-constrain WVC
        # tie-breaking).
        from repro.core import is_lamb_set

        mapped = {tuple(v[p] for p in perm) for v in a.lambs}
        assert is_lamb_set(permuted, repeated(pi2, 2), mapped)


def _reflect_instance(faults: FaultSet, axis: int):
    mesh = faults.mesh
    n = mesh.widths[axis]

    def rf(v):
        v = list(v)
        v[axis] = n - 1 - v[axis]
        return tuple(v)

    nodes = [rf(v) for v in faults.node_faults]
    links = [(rf(u), rf(w)) for (u, w) in faults.link_faults]
    return FaultSet(mesh, nodes, links), rf


class TestReflectionSymmetry:
    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=20, deadline=None)
    def test_lamb_set_reflects(self, fm):
        """Mirroring the mesh along any axis mirrors the problem: the
        dimension-ordered route structure is preserved, so lamb sizes
        are invariant and SES partitions map bijectively."""
        faults, pi = fm
        axis = pi.perm[0]
        reflected, rf = _reflect_instance(faults, axis)
        a = find_lamb_set(faults, repeated(pi, 2))
        b = find_lamb_set(reflected, repeated(pi, 2))
        assert a.size == b.size
        assert a.num_ses == b.num_ses

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=15, deadline=None)
    def test_partition_sizes_reflect(self, fm):
        faults, pi = fm
        for axis in range(faults.mesh.d):
            reflected, _ = _reflect_instance(faults, axis)
            assert len(find_ses_partition(faults, pi)) == len(
                find_ses_partition(reflected, pi)
            )


class TestWormholeConservation:
    def test_network_fully_released_after_drain(self):
        """After draining, no resource is owned and no buffer holds a
        flit (conservation of flits + clean teardown)."""
        from repro.wormhole import WormholeSimulator, uniform_random_traffic

        mesh = Mesh((8, 8))
        faults = FaultSet(mesh, [(3, 3)])
        sim = WormholeSimulator(faults, repeated(xy(), 2), seed=0)
        rng = np.random.default_rng(0)
        endpoints = faults.good_nodes()
        for inj in uniform_random_traffic(endpoints, 50, rng, num_flits=5):
            sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
        sim.run()
        assert not sim.net._owner
        assert not sim.net._occupancy
        delivered_flits = sum(
            m.num_flits for m in sim.messages.values() if m.is_delivered
        )
        assert delivered_flits == sum(m.num_flits for m in sim.messages.values())

    def test_flit_positions_ordered_throughout(self):
        """Invariant: flit positions are non-increasing (no flit passes
        its predecessor) at every cycle."""
        from repro.wormhole import WormholeSimulator

        mesh = Mesh((8, 8))
        sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2), seed=0)
        sim.send((0, 0), (7, 7), num_flits=6)
        sim.send((7, 0), (0, 7), num_flits=6)
        sim.send((0, 7), (7, 0), num_flits=6)
        while not all(m.is_delivered for m in sim.messages.values()):
            sim.step()
            for m in sim.messages.values():
                assert all(
                    a >= b for a, b in zip(m.flit_pos, m.flit_pos[1:])
                )
