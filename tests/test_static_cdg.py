"""Static CDG deadlock prover: unit tests + cross-validation.

The acceptance bar: every configuration the test suite historically
deadlocks *dynamically* (``DeadlockError``) must be rejected by the
prover *statically* with a counterexample cycle, and every golden
parity configuration (which drains cleanly) must be accepted.
"""

import json

import numpy as np
import pytest

from repro.analysis.static import (
    StaticDeadlockError,
    assert_deadlock_free,
    build_cdg,
    find_dependency_cycle,
    prove_deadlock_free,
)
from repro.mesh import FaultSet, Mesh, Torus, random_node_faults
from repro.routing import ascending, repeated, xy
from repro.wormhole import DeadlockError, SimulationError, WormholeSimulator
from repro.wormhole.packets import Hop


def _k2(d=2):
    return repeated(ascending(d), 2)


# ----------------------------------------------------------------------
# The paper's discipline is provably deadlock-free
# ----------------------------------------------------------------------
class TestAcyclicConfigs:
    def test_fault_free_mesh_identity_vcs(self):
        report = prove_deadlock_free(FaultSet(Mesh((8, 8))), _k2())
        assert report.deadlock_free and report.cycle is None
        assert report.num_channels > 0 and report.num_dependencies > 0
        assert report.rounds == 2 and report.num_vcs == 2

    def test_one_round_mesh(self):
        report = prove_deadlock_free(
            FaultSet(Mesh((6, 6))), repeated(ascending(2), 1)
        )
        assert report.deadlock_free

    def test_3d_mesh(self):
        report = prove_deadlock_free(FaultSet(Mesh((4, 4, 4))), _k2(3))
        assert report.deadlock_free

    def test_with_random_faults(self):
        mesh = Mesh((8, 8))
        for seed in range(3):
            faults = random_node_faults(mesh, 5, np.random.default_rng(seed))
            assert prove_deadlock_free(faults, _k2()).deadlock_free

    def test_with_link_faults(self):
        mesh = Mesh((6, 6))
        faults = FaultSet(mesh, [], [((2, 2), (3, 2)), ((4, 1), (4, 0))])
        assert prove_deadlock_free(faults, _k2()).deadlock_free

    def test_shifted_vc_map(self):
        # Any injective round->VC map preserves the argument.
        report = prove_deadlock_free(
            FaultSet(Mesh((5, 5))), _k2(), vc_of_round=lambda t: t + 1,
            num_vcs=3,
        )
        assert report.deadlock_free and report.num_vcs == 3

    def test_assert_returns_report_when_clean(self):
        report = assert_deadlock_free(FaultSet(Mesh((4, 4))), _k2())
        assert report.deadlock_free


# ----------------------------------------------------------------------
# Broken disciplines are refuted with a minimal counterexample
# ----------------------------------------------------------------------
class TestCyclicConfigs:
    def _single_vc_report(self, mesh=None):
        return prove_deadlock_free(
            FaultSet(mesh or Mesh((4, 4))), _k2(),
            vc_of_round=lambda t: 0, num_vcs=1,
        )

    def test_single_vc_two_rounds_is_cyclic(self):
        report = self._single_vc_report()
        assert not report.deadlock_free
        assert report.cycle is not None and len(report.cycle) >= 2

    def test_counterexample_is_a_real_cycle(self):
        mesh = Mesh((4, 4))
        graph = build_cdg(
            FaultSet(mesh), _k2(), vc_of_round=lambda t: 0, num_vcs=1
        )
        cyc = self._single_vc_report(mesh).cycle.channels
        for c1, c2 in zip(cyc, cyc[1:] + cyc[:1]):
            assert c2 in graph[c1]  # every edge exists in the CDG
            assert c1[1] == c2[0]  # consecutive channels share a router

    def test_minimal_cycle_is_length_two(self):
        # Single-VC k=2 admits an immediate u->w->u reversal through
        # the inter-round edge; the minimizer must find it.
        assert len(self._single_vc_report().cycle) == 2

    def test_torus_plain_dor_is_cyclic(self):
        # Standard result: wrap links close a ring on each dimension.
        report = prove_deadlock_free(
            FaultSet(Torus((4, 4))), repeated(ascending(2), 1)
        )
        assert not report.deadlock_free
        assert len(report.cycle) == 4  # the 4-node wrap ring

    def test_assert_raises_typed_error(self):
        with pytest.raises(StaticDeadlockError) as exc:
            assert_deadlock_free(
                FaultSet(Mesh((4, 4))), _k2(),
                vc_of_round=lambda t: 0, num_vcs=1,
            )
        err = exc.value
        assert isinstance(err, SimulationError)
        assert err.report.cycle is not None
        assert "dependency cycle" in str(err)

    def test_report_artifact_roundtrip(self, tmp_path):
        report = self._single_vc_report()
        out = tmp_path / "cdg.json"
        report.write_artifact(str(out))
        data = json.loads(out.read_text())
        assert data["deadlock_free"] is False
        assert data["cycle"]["length"] == len(report.cycle)
        assert len(data["cycle"]["channels"]) == len(report.cycle)

    def test_describe_mentions_cycle(self):
        report = self._single_vc_report()
        text = report.describe()
        assert "CYCLIC" in text and "=>" in text


# ----------------------------------------------------------------------
# Graph construction details
# ----------------------------------------------------------------------
class TestBuildCdg:
    def test_faulty_hardware_excluded(self):
        mesh = Mesh((5, 5))
        faults = FaultSet(mesh, [(2, 2)], [((0, 0), (1, 0))])
        graph = build_cdg(faults, _k2())
        for c1, succs in graph.items():
            for (u, w, _vc) in (c1,) + succs:
                assert (u, w) != ((0, 0), (1, 0))
                assert u != (2, 2) and w != (2, 2)

    def test_deterministic(self):
        faults = random_node_faults(
            Mesh((6, 6)), 4, np.random.default_rng(7)
        )
        a = build_cdg(faults, _k2())
        b = build_cdg(faults, _k2())
        assert list(a) == list(b)
        assert all(a[k] == b[k] for k in a)

    def test_bad_vc_map_rejected(self):
        with pytest.raises(ValueError):
            build_cdg(FaultSet(Mesh((3, 3))), _k2(), vc_of_round=lambda t: 5,
                      num_vcs=2)
        with pytest.raises(ValueError):
            build_cdg(FaultSet(Mesh((3, 3))), _k2(), num_vcs=0)

    def test_find_cycle_on_tiny_graphs(self):
        assert find_dependency_cycle({}) is None
        a, b = ((0,), (1,), 0), ((1,), (0,), 0)
        assert find_dependency_cycle({a: (b,)}) is None  # path, no cycle
        cyc = find_dependency_cycle({a: (b,), b: (a,)})
        assert cyc is not None and sorted(cyc) == sorted([a, b])
        # Self-loop is the minimum possible.
        assert find_dependency_cycle({a: (a, b), b: (a,)}) == [a]


# ----------------------------------------------------------------------
# Cross-validation against the dynamic simulator
# ----------------------------------------------------------------------
class TestCrossValidation:
    """Static verdicts must agree with every dynamic outcome the suite
    reproduces."""

    def _ring_sim(self, **kw):
        # The exact configuration that deadlocks dynamically in
        # tests/test_sim_parity.py::test_deadlock_parity and
        # tests/test_chaos.py (single VC, k=2, 4-message ring).
        mesh = Mesh((4, 4))
        sim = WormholeSimulator(
            FaultSet(mesh), repeated(xy(), 2),
            vc_of_round=lambda t: 0, num_vcs=1, buffer_flits=1, **kw
        )
        ring = [(0, 0), (2, 0), (2, 2), (0, 2)]

        def L(a, b):
            path = [a]
            x, y = a
            while x != b[0]:
                x += 1 if b[0] > x else -1
                path.append((x, y))
            while y != b[1]:
                y += 1 if b[1] > y else -1
                path.append((x, y))
            return path

        for i in range(4):
            a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            hops = [
                Hop(u, v, 0)
                for p in (L(a, b), L(b, c))
                for u, v in zip(p, p[1:])
            ]
            sim.send(a, c, num_flits=12, hops=hops)
        return sim

    def test_dynamic_deadlock_is_flagged_statically(self):
        """Every historical DeadlockError scenario is rejected by the
        prover *before* a single cycle is simulated."""
        sim = self._ring_sim()
        with pytest.raises(StaticDeadlockError) as exc:
            sim.verify_deadlock_free()
        assert exc.value.report.cycle is not None
        # ... and the dynamic run indeed deadlocks, as it always has.
        with pytest.raises(DeadlockError):
            sim.run(5000)

    def test_nonstrict_returns_counterexample(self):
        report = self._ring_sim().verify_deadlock_free(strict=False)
        assert not report.deadlock_free
        assert len(report.cycle) >= 2

    def test_prover_clean_config_never_deadlocks(self):
        """Golden parity config: prover accepts, and a seeded traffic
        run drains with every message accounted for."""
        mesh = Mesh((8, 8))
        for seed in (0, 1):
            faults = random_node_faults(mesh, 3, np.random.default_rng(seed))
            sim = WormholeSimulator(faults, repeated(xy(), 2), seed=seed)
            assert sim.verify_deadlock_free().deadlock_free
            good = [
                v for v in mesh.nodes() if not faults.node_is_faulty(v)
            ]
            rng = np.random.default_rng(seed + 1)
            for _ in range(60):
                s, d = rng.choice(len(good), size=2, replace=False)
                sim.send(good[s], good[d],
                         num_flits=int(rng.integers(2, 7)),
                         inject_cycle=int(rng.integers(0, 40)))
            stats = sim.run(max_cycles=100000)  # must not raise
            assert stats.delivered == stats.total_messages


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestProveCli:
    def test_clean_config_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(["prove", "--mesh", "6x6", "--faults", "2", "--seed", "3"])
        assert rc == 0
        assert "acyclic" in capsys.readouterr().out

    def test_single_vc_exits_nonzero_with_cycle(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main(["prove", "--mesh", "4x4", "--single-vc",
                   "--out", str(out)])
        assert rc == 1
        assert "CYCLIC" in capsys.readouterr().out
        assert json.loads(out.read_text())["deadlock_free"] is False

    def test_torus_exits_nonzero(self):
        from repro.cli import main

        assert main(["prove", "--mesh", "torus:4x4", "--rounds", "1"]) == 1
