"""Tests for repro.mesh.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh

from conftest import small_meshes


class TestConstruction:
    def test_basic(self):
        m = Mesh((3, 4, 5))
        assert m.d == 3
        assert m.num_nodes == 60
        assert m.widths == (3, 4, 5)

    def test_square(self):
        m = Mesh.square(3, 32)
        assert m.widths == (32, 32, 32)
        assert m.num_nodes == 32768

    def test_hypercube(self):
        m = Mesh.hypercube(4)
        assert m.widths == (2, 2, 2, 2)
        assert m.num_nodes == 16

    def test_rejects_width_one(self):
        with pytest.raises(ValueError):
            Mesh((3, 1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mesh(())

    def test_equality_and_hash(self):
        assert Mesh((3, 4)) == Mesh((3, 4))
        assert Mesh((3, 4)) != Mesh((4, 3))
        assert hash(Mesh((3, 4))) == hash(Mesh((3, 4)))


class TestMembership:
    def test_contains(self):
        m = Mesh((12, 12))
        assert m.contains((0, 0))
        assert m.contains((11, 11))
        assert not m.contains((12, 0))
        assert not m.contains((0, -1))
        assert not m.contains((0, 0, 0))

    def test_nodes_iteration(self):
        m = Mesh((2, 3))
        nodes = list(m.nodes())
        assert len(nodes) == 6
        assert len(set(nodes)) == 6
        assert all(m.contains(v) for v in nodes)


class TestNeighbors:
    def test_interior_degree(self):
        m = Mesh((5, 5))
        assert sorted(m.neighbors((2, 2))) == [(1, 2), (2, 1), (2, 3), (3, 2)]

    def test_corner_degree(self):
        m = Mesh((5, 5))
        assert m.degree((0, 0)) == 2
        assert m.degree((4, 4)) == 2
        assert m.degree((0, 2)) == 3

    def test_rejects_non_node(self):
        with pytest.raises(ValueError):
            list(Mesh((3, 3)).neighbors((5, 5)))

    def test_num_links_2d(self):
        # 3x3 mesh: 2*(2*3)*2 = 24 directed links.
        assert Mesh((3, 3)).num_links() == 24
        assert Mesh((3, 3)).num_links() == len(list(Mesh((3, 3)).links()))

    @given(small_meshes())
    @settings(max_examples=25, deadline=None)
    def test_num_links_matches_enumeration(self, mesh):
        assert mesh.num_links() == len(list(mesh.links()))


class TestIndexing:
    @given(small_meshes())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, mesh):
        for v in mesh.nodes():
            assert mesh.node_at(mesh.index_of(v)) == v

    @given(small_meshes())
    @settings(max_examples=15, deadline=None)
    def test_indices_are_bijection(self, mesh):
        idx = sorted(mesh.index_of(v) for v in mesh.nodes())
        assert idx == list(range(mesh.num_nodes))

    def test_vectorized_matches_scalar(self):
        m = Mesh((4, 5, 6))
        nodes = np.asarray(list(m.nodes()))
        idx = m.indices_of(nodes)
        assert [m.index_of(tuple(v)) for v in nodes] == list(idx)
        back = m.nodes_at(idx)
        assert np.array_equal(back, nodes)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            Mesh((3, 3)).node_at(9)
        with pytest.raises(ValueError):
            Mesh((3, 3)).index_of((3, 0))


class TestDistances:
    def test_l1(self):
        m = Mesh((10, 10))
        assert m.l1_distance((0, 0), (3, 4)) == 7

    def test_adjacency(self):
        m = Mesh((4, 4))
        assert m.are_adjacent((1, 1), (1, 2))
        assert not m.are_adjacent((1, 1), (2, 2))
        assert not m.are_adjacent((0, 0), (0, 0))


class TestBisection:
    def test_square_meshes(self):
        assert Mesh.square(2, 32).bisection_width == 32
        assert Mesh.square(3, 32).bisection_width == 1024
        assert Mesh.square(2, 181).bisection_width == 181

    def test_rectangular(self):
        # Smallest axis-aligned cut of a 4x8 mesh crosses 4 nodes.
        assert Mesh((4, 8)).bisection_width == 4


class TestRandomNodes:
    def test_distinct(self, rng):
        m = Mesh((6, 6))
        picks = m.random_nodes(10, rng)
        assert len(set(picks)) == 10
        assert all(m.contains(v) for v in picks)

    def test_exclusion(self, rng):
        m = Mesh((3, 3))
        excluded = [(0, 0), (1, 1)]
        picks = m.random_nodes(7, rng, exclude=excluded)
        assert len(picks) == 7
        assert not set(picks) & set(excluded)

    def test_too_many(self, rng):
        with pytest.raises(ValueError):
            Mesh((2, 2)).random_nodes(5, rng)

    def test_deterministic_per_seed(self):
        m = Mesh((8, 8))
        a = m.random_nodes(5, np.random.default_rng(3))
        b = m.random_nodes(5, np.random.default_rng(3))
        assert a == b
