"""Tests for the Dinic max-flow solver (repro.graphs.maxflow)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import INF, MaxFlow


class TestBasics:
    def test_single_edge(self):
        g = MaxFlow(2)
        g.add_edge(0, 1, 5)
        assert g.max_flow(0, 1) == 5

    def test_diamond(self):
        g = MaxFlow(4)
        g.add_edge(0, 1, 3)
        g.add_edge(0, 2, 2)
        g.add_edge(1, 3, 2)
        g.add_edge(2, 3, 3)
        assert g.max_flow(0, 3) == 4

    def test_bottleneck(self):
        g = MaxFlow(3)
        g.add_edge(0, 1, 10)
        g.add_edge(1, 2, 1)
        assert g.max_flow(0, 2) == 1

    def test_disconnected(self):
        g = MaxFlow(3)
        g.add_edge(0, 1, 5)
        assert g.max_flow(0, 2) == 0

    def test_infinite_capacity_path(self):
        g = MaxFlow(3)
        g.add_edge(0, 1, INF)
        g.add_edge(1, 2, 7)
        assert g.max_flow(0, 2) == 7

    def test_edge_flow_query(self):
        g = MaxFlow(3)
        e0 = g.add_edge(0, 1, 5)
        e1 = g.add_edge(1, 2, 3)
        g.max_flow(0, 2)
        assert g.edge_flow(e0) == 3
        assert g.edge_flow(e1) == 3

    def test_rejects_bad_input(self):
        g = MaxFlow(2)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            g.max_flow(0, 0)
        with pytest.raises(ValueError):
            MaxFlow(0)


class TestMinCut:
    def test_cut_separates(self):
        g = MaxFlow(4)
        g.add_edge(0, 1, 1)
        g.add_edge(0, 2, 1)
        g.add_edge(1, 3, 5)
        g.add_edge(2, 3, 5)
        g.max_flow(0, 3)
        side = g.min_cut_side(0)
        assert 0 in side and 3 not in side

    def test_cut_capacity_equals_flow(self):
        rng = np.random.default_rng(7)
        for trial in range(10):
            n = 8
            g = MaxFlow(n)
            edges = []
            for u in range(n):
                for v in range(n):
                    if u != v and rng.random() < 0.3:
                        c = float(rng.integers(1, 10))
                        edges.append((u, v, c))
                        g.add_edge(u, v, c)
            flow = g.max_flow(0, n - 1)
            side = g.min_cut_side(0)
            cut_cap = sum(c for (u, v, c) in edges if u in side and v not in side)
            assert flow == pytest.approx(cut_cap)


class TestAgainstNetworkx:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        G = nx.DiGraph()
        G.add_nodes_from(range(n))
        mine = MaxFlow(n)
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.35:
                    c = int(rng.integers(1, 12))
                    G.add_edge(u, v, capacity=c)
                    mine.add_edge(u, v, c)
        expected = nx.maximum_flow_value(G, 0, n - 1) if G.number_of_edges() else 0
        assert mine.max_flow(0, n - 1) == pytest.approx(expected)
