"""Tests for the flit-level wormhole simulator
(repro.wormhole.simulator + deadlock + stats)."""

import numpy as np
import pytest

from repro.core import find_lamb_set
from repro.mesh import FaultSet, Mesh, random_node_faults
from repro.routing import max_turns_bound, repeated, xy, xyz
from repro.wormhole import (
    DeadlockError,
    Hop,
    WormholeSimulator,
    uniform_random_traffic,
)


def fresh_sim(widths=(8, 8), fault_nodes=(), k=2, **kw):
    mesh = Mesh(widths)
    faults = FaultSet(mesh, list(fault_nodes))
    pi = xy() if mesh.d == 2 else xyz()
    return WormholeSimulator(faults, repeated(pi, k), **kw)


class TestSingleMessage:
    def test_latency_formula(self):
        """An uncontended message takes hops + flits - 1 cycles... plus
        one for the end-of-cycle delivery convention."""
        sim = fresh_sim()
        msg = sim.send((0, 0), (3, 0), num_flits=4)
        stats = sim.run()
        assert stats.delivered == 1
        assert msg.latency == 3 + 4 - 1  # pipelining

    def test_single_flit_single_hop(self):
        sim = fresh_sim()
        msg = sim.send((0, 0), (1, 0), num_flits=1)
        sim.run()
        assert msg.latency == 1

    def test_self_message_delivers_instantly(self):
        sim = fresh_sim()
        msg = sim.send((2, 2), (2, 2), num_flits=3)
        assert msg.is_delivered
        sim.run()

    def test_route_avoids_faults(self):
        sim = fresh_sim(fault_nodes=[(2, 0), (1, 1)])
        msg = sim.send((0, 0), (4, 0), num_flits=2)
        for hop in msg.hops:
            assert not sim.faults.node_is_faulty(hop.src)
            assert not sim.faults.node_is_faulty(hop.dst)
        sim.run()
        assert msg.is_delivered

    def test_unreachable_raises(self):
        # Wall: with k=1 round of XY the far side is unreachable.
        wall = [(2, y) for y in range(8)]
        sim = fresh_sim(fault_nodes=wall, k=1)
        with pytest.raises(ValueError):
            sim.send((0, 0), (5, 5))

    def test_vc_assignment_follows_rounds(self):
        sim = fresh_sim(fault_nodes=[(3, 0)])
        msg = sim.send((0, 0), (5, 0), num_flits=1)
        vcs = {h.vc for h in msg.hops}
        assert vcs <= {0, 1}
        # Round order: all VC-0 hops precede VC-1 hops.
        seq = [h.vc for h in msg.hops]
        assert seq == sorted(seq)

    def test_injection_in_past_rejected(self):
        sim = fresh_sim()
        sim.step()
        with pytest.raises(ValueError):
            sim.send((0, 0), (1, 0), inject_cycle=0)


class TestContention:
    def test_channel_serializes(self):
        """Two messages over the same link on the same VC serialize;
        the second waits for the first's tail."""
        sim = fresh_sim()
        a = sim.send((0, 0), (3, 0), num_flits=5)
        b = sim.send((0, 0), (3, 0), num_flits=5)
        stats = sim.run()
        assert stats.delivered == 2
        assert b.deliver_cycle > a.deliver_cycle

    def test_oldest_first_arbitration(self):
        sim = fresh_sim()
        late = sim.send((1, 0), (3, 0), num_flits=3, inject_cycle=2)
        early = sim.send((0, 0), (3, 0), num_flits=3, inject_cycle=0)
        sim.run()
        assert early.deliver_cycle <= late.deliver_cycle

    def test_wormhole_blocking_holds_flits_in_place(self):
        """With tiny buffers a blocked head strands its flits along the
        path (wormhole, not store-and-forward): the blocker's channels
        stay owned until its tail passes."""
        sim = fresh_sim(buffer_flits=1)
        a = sim.send((0, 0), (4, 0), num_flits=8)
        b = sim.send((4, 4), (4, 0), num_flits=8)  # shares column entry
        stats = sim.run()
        assert stats.delivered == 2


class TestDeadlockFreedom:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_traffic_never_deadlocks_with_proper_vcs(self, seed):
        """The paper's discipline (round t on VC t) is deadlock-free."""
        mesh = Mesh((6, 6))
        rng = np.random.default_rng(seed)
        faults = random_node_faults(mesh, 3, rng)
        orderings = repeated(xy(), 2)
        result = find_lamb_set(faults, orderings)
        endpoints = [v for v in mesh.nodes() if result.is_survivor(v)]
        sim = WormholeSimulator(faults, orderings, buffer_flits=1, seed=seed)
        for inj in uniform_random_traffic(endpoints, 80, rng, num_flits=6):
            sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
        stats = sim.run(max_cycles=50_000)  # DeadlockError would fail this
        assert stats.delivered == stats.total_messages

    def test_single_vc_ring_deadlocks(self):
        mesh = Mesh((4, 4))
        sim = WormholeSimulator(
            FaultSet(mesh), repeated(xy(), 2),
            vc_of_round=lambda t: 0, num_vcs=1, buffer_flits=1,
        )
        ring = [(0, 0), (2, 0), (2, 2), (0, 2)]

        def L(a, b):
            path = [a]
            x, y = a
            while x != b[0]:
                x += 1 if b[0] > x else -1
                path.append((x, y))
            while y != b[1]:
                y += 1 if b[1] > y else -1
                path.append((x, y))
            return path

        for i in range(4):
            a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            hops = [Hop(u, v, 0) for p in (L(a, b), L(b, c)) for u, v in zip(p, p[1:])]
            sim.send(a, c, num_flits=12, hops=hops)
        with pytest.raises(DeadlockError) as exc:
            sim.run(5000)
        assert len(exc.value.cycle) == 4

    def test_timeout_without_deadlock(self):
        sim = fresh_sim()
        sim.send((0, 0), (7, 7), num_flits=4)
        with pytest.raises(RuntimeError, match="did not drain"):
            sim.run(max_cycles=2)


class TestStats:
    def test_aggregates(self):
        sim = fresh_sim()
        rng = np.random.default_rng(0)
        endpoints = list(Mesh((8, 8)).nodes())
        for inj in uniform_random_traffic(endpoints, 30, rng, num_flits=4):
            sim.send(inj.source, inj.dest, inj.num_flits)
        stats = sim.run()
        assert stats.delivered == stats.total_messages == 30
        assert stats.avg_latency > 0
        assert stats.p95_latency >= stats.avg_latency / 2
        assert stats.max_latency >= stats.p95_latency - 1
        assert stats.throughput_flits_per_cycle > 0
        assert stats.avg_hops > 0
        assert stats.max_turns <= max_turns_bound(2, 2)

    def test_turns_bound_3d(self):
        mesh = Mesh((4, 4, 4))
        faults = FaultSet(mesh, [(1, 1, 1), (2, 2, 2)])
        sim = WormholeSimulator(faults, repeated(xyz(), 2), seed=0)
        rng = np.random.default_rng(0)
        endpoints = [v for v in mesh.nodes() if not faults.node_is_faulty(v)]
        for inj in uniform_random_traffic(endpoints, 40, rng, num_flits=2):
            sim.send(inj.source, inj.dest, inj.num_flits)
        stats = sim.run()
        assert stats.max_turns <= max_turns_bound(3, 2)


class TestVcConfiguration:
    def test_extra_vcs_allowed(self):
        """More VCs than rounds is legal (hardware may have spares)."""
        sim = fresh_sim(num_vcs=4)
        sim.send((0, 0), (3, 3), num_flits=2)
        assert sim.run().delivered == 1

    def test_vc_override_out_of_range_rejected(self):
        sim = fresh_sim(num_vcs=1)  # but 2 rounds want VCs 0 and 1
        wall = [(4, y) for y in range(3)]
        with pytest.raises(ValueError):
            # Any 2-round route whose second round moves will request
            # VC 1 and fail hop validation.
            sim2 = fresh_sim(fault_nodes=wall, num_vcs=1)
            sim2.send((0, 0), (6, 0), num_flits=2)

    def test_custom_vc_map(self):
        sim = fresh_sim(num_vcs=3, vc_of_round=lambda t: t + 1)
        msg = sim.send((0, 0), (3, 0), num_flits=2)
        assert {h.vc for h in msg.hops} == {1}
        sim.run()
