"""Tests for turn counting (repro.routing.turns)."""

import pytest

from repro.routing import count_turns, count_turns_multiround, max_turns_bound


class TestCountTurns:
    def test_straight_line(self):
        assert count_turns([(0, 0), (1, 0), (2, 0), (3, 0)]) == 0

    def test_single_turn(self):
        assert count_turns([(0, 0), (1, 0), (1, 1)]) == 1

    def test_direction_reversal_counts(self):
        assert count_turns([(0, 0), (1, 0), (0, 0)]) == 1

    def test_serpentine(self):
        path = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)]
        assert count_turns(path) == 4

    def test_short_paths(self):
        assert count_turns([(0, 0)]) == 0
        assert count_turns([(0, 0), (0, 1)]) == 0

    def test_rejects_jumps(self):
        with pytest.raises(ValueError):
            count_turns([(0, 0), (2, 0), (3, 0)])
        with pytest.raises(ValueError):
            count_turns([(0, 0), (1, 1)])


class TestMultiround:
    def test_turn_at_round_boundary(self):
        r1 = [(0, 0), (1, 0)]
        r2 = [(1, 0), (1, 1)]
        assert count_turns_multiround([r1, r2]) == 1

    def test_no_turn_when_direction_continues(self):
        r1 = [(0, 0), (1, 0)]
        r2 = [(1, 0), (2, 0)]
        assert count_turns_multiround([r1, r2]) == 0

    def test_rejects_discontiguous(self):
        with pytest.raises(ValueError):
            count_turns_multiround([[(0, 0), (1, 0)], [(2, 0), (3, 0)]])

    def test_empty_second_round(self):
        r1 = [(0, 0), (1, 0), (1, 1)]
        r2 = [(1, 1)]
        assert count_turns_multiround([r1, r2]) == 1


class TestBound:
    def test_values(self):
        assert max_turns_bound(2, 1) == 1
        assert max_turns_bound(2, 2) == 3
        assert max_turns_bound(3, 2) == 5
        assert max_turns_bound(3, 1) == 2
