"""The domain lint engine: rule behavior, suppression, CLI, and the
"fixed tree stays clean" acceptance check."""

import json

import pytest

from repro.analysis.static import LintEngine, analyze_paths
from repro.analysis.static.lint import format_violations
from repro.analysis.static.rules import (
    ALL_RULES,
    SEEDED_FIXTURES,
    rule_by_id,
)


def _ids(violations):
    return [v.rule_id for v in violations]


# ----------------------------------------------------------------------
# Each seeded fixture trips exactly its own rule
# ----------------------------------------------------------------------
class TestSeededFixtures:
    @pytest.mark.parametrize("rule_id", sorted(SEEDED_FIXTURES))
    def test_fixture_trips_its_rule(self, rule_id):
        violations = LintEngine().check_source(
            SEEDED_FIXTURES[rule_id], f"fixture_{rule_id}.py"
        )
        assert rule_id in _ids(violations), (
            f"{rule_id} fixture produced {violations}"
        )

    @pytest.mark.parametrize("rule_id", sorted(SEEDED_FIXTURES))
    def test_seeding_a_fixture_breaks_the_tree(self, rule_id, tmp_path):
        """Acceptance: a seeded-violation file turns the exit nonzero."""
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(SEEDED_FIXTURES[rule_id])
        assert _ids(analyze_paths([str(pkg)]))  # nonempty -> exit 1


# ----------------------------------------------------------------------
# Rule-level behavior
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def check(self, src):
        return _ids(rule_by_id("REP101").check(
            __import__("ast").parse(src), "t.py"
        ))

    def test_flags_legacy_np_random(self):
        assert self.check("np.random.rand(3)\n") == ["REP101"]
        assert self.check("np.random.seed(0)\n") == ["REP101"]

    def test_flags_unseeded_default_rng(self):
        assert self.check("rng = np.random.default_rng()\n") == ["REP101"]

    def test_allows_seeded_default_rng(self):
        assert self.check("rng = np.random.default_rng(42)\n") == []
        assert self.check("rng = np.random.default_rng(seed=s)\n") == []

    def test_allows_generator_types(self):
        assert self.check("g = np.random.Generator(np.random.PCG64(1))\n") == []

    def test_flags_stdlib_random(self):
        assert self.check("import random\nrandom.shuffle(xs)\n") == ["REP101"]
        assert self.check("from random import shuffle\n") == ["REP101"]
        assert self.check("r = random.Random()\n") == ["REP101"]
        assert self.check("r = random.Random(7)\n") == []


class TestHashOrderIteration:
    def check(self, src):
        return _ids(rule_by_id("REP102").check(
            __import__("ast").parse(src), "t.py"
        ))

    def test_flags_set_literal_iteration(self):
        assert self.check("for v in {1, 2}:\n    pass\n") == ["REP102"]

    def test_flags_comprehension_over_set_call(self):
        assert self.check("out = [v for v in set(xs)]\n") == ["REP102"]

    def test_flags_list_of_set(self):
        assert self.check("xs = list({1, 2})\n") == ["REP102"]

    def test_flags_set_typed_local(self):
        src = (
            "def f():\n"
            "    seen = set()\n"
            "    for v in seen:\n"
            "        pass\n"
        )
        assert self.check(src) == ["REP102"]

    def test_flags_set_pop(self):
        src = (
            "def f():\n"
            "    remaining = set(xs)\n"
            "    while remaining:\n"
            "        v = remaining.pop()\n"
        )
        assert self.check(src) == ["REP102"]

    def test_sorted_wrapper_is_clean(self):
        assert self.check("for v in sorted({1, 2}):\n    pass\n") == []
        src = (
            "def f():\n"
            "    seen = set()\n"
            "    for v in sorted(seen):\n"
            "        pass\n"
        )
        assert self.check(src) == []

    def test_rebound_name_not_flagged(self):
        # A name also bound to a list is not treated as a set.
        src = (
            "def f(flag):\n"
            "    xs = set()\n"
            "    xs = [1, 2]\n"
            "    for v in xs:\n"
            "        pass\n"
        )
        assert self.check(src) == []

    def test_membership_test_is_clean(self):
        assert self.check("ok = 3 in {1, 2, 3}\n") == []


class TestMutableDefaultAndBareExcept:
    def test_mutable_defaults(self):
        engine = LintEngine([rule_by_id("REP103")])
        assert _ids(engine.check_source("def f(a=[], b={}):\n    pass\n")) == \
            ["REP103", "REP103"]
        assert _ids(engine.check_source("def f(a=None, b=()):\n    pass\n")) == []

    def test_bare_except(self):
        engine = LintEngine([rule_by_id("REP104")])
        assert _ids(engine.check_source(SEEDED_FIXTURES["REP104"])) == ["REP104"]
        ok = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert _ids(engine.check_source(ok)) == []


class TestParallelClosure:
    def check(self, src):
        return _ids(LintEngine([rule_by_id("REP105")]).check_source(src))

    def test_flags_lambda_worker(self):
        assert self.check("engine.run_trials(lambda p, t: t, 4, {})\n") == \
            ["REP105"]

    def test_flags_nested_function_worker(self):
        assert self.check(SEEDED_FIXTURES["REP105"]) == ["REP105"]

    def test_module_level_worker_is_clean(self):
        src = (
            "def worker(payload, t):\n"
            "    return t\n"
            "def sweep(engine):\n"
            "    return engine.map_ordered(worker, 4, {})\n"
        )
        assert self.check(src) == []

    def test_flags_lambda_bound_name_even_at_module_level(self):
        # A module-level ``name = lambda`` is just as unpicklable as a
        # nested def: pickle resolves functions by qualified name and
        # ``<lambda>`` never resolves.
        src = (
            "worker = lambda p, t: t\n"
            "def sweep(engine):\n"
            "    return engine.run_trials(worker, 4, {})\n"
        )
        assert self.check(src) == ["REP105"]

    def test_flags_annotated_lambda_binding(self):
        src = (
            "def sweep(engine):\n"
            "    worker: object = lambda p, t: t\n"
            "    return engine.run_trials(worker, 4, {})\n"
        )
        assert self.check(src) == ["REP105"]

    def test_flags_executor_submit_and_map(self):
        # The raw concurrent.futures surface ships workers to process
        # pools exactly like the trial engine does.
        assert self.check("pool.submit(lambda: 1)\n") == ["REP105"]
        assert self.check("pool.map(lambda x: x, items)\n") == ["REP105"]

    def test_plain_builtin_map_is_clean(self):
        # Only attribute calls (``pool.map``) are pool hand-offs; the
        # builtin ``map`` stays in-process.
        assert self.check("out = list(map(str, [1, 2]))\n") == []

    def test_def_rebinding_is_clean(self):
        src = (
            "def worker(p, t):\n"
            "    return t\n"
            "alias = worker\n"
            "def sweep(engine):\n"
            "    return engine.run_trials(alias, 4, {})\n"
        )
        assert self.check(src) == []


class TestImpureStepClock:
    def check(self, src):
        return _ids(LintEngine([rule_by_id("REP106")]).check_source(src))

    def test_flags_time_time_in_registered_step(self):
        assert self.check(SEEDED_FIXTURES["REP106"]) == ["REP106"]

    def test_flags_registry_register_spelling(self):
        src = (
            "@STEPS.register('demo', 'demo')\n"
            "def demo(params, inputs):\n"
            "    return {'t': time.monotonic()}\n"
        )
        assert self.check(src) == ["REP106"]

    def test_flags_datetime_now(self):
        src = (
            "@register_step('demo', 'demo')\n"
            "def demo(params, inputs):\n"
            "    return {'t': datetime.now().isoformat()}\n"
        )
        assert self.check(src) == ["REP106"]

    def test_clock_outside_steps_is_clean(self):
        # The runner itself times steps — wall-clock is fine anywhere
        # that is not a registered (content-addressed) step body.
        src = (
            "def run(self):\n"
            "    started = time.monotonic()\n"
            "    return time.perf_counter() - started\n"
        )
        assert self.check(src) == []

    def test_undecorated_neighbor_is_clean(self):
        src = (
            "@register_step('demo', 'demo')\n"
            "def demo(params, inputs):\n"
            "    return {}\n"
            "def helper():\n"
            "    return time.time()\n"
        )
        assert self.check(src) == []

    def test_non_registry_decorator_is_clean(self):
        src = (
            "@functools.lru_cache()\n"
            "def cached():\n"
            "    return time.time()\n"
        )
        assert self.check(src) == []

    def test_noqa_suppresses_rep106(self):
        src = (
            "@register_step('demo', 'demo')\n"
            "def demo(params, inputs):\n"
            "    return {'t': time.time()}  # noqa: REP106\n"
        )
        assert self.check(src) == []


# ----------------------------------------------------------------------
# Engine behavior: suppression, syntax errors, determinism, formats
# ----------------------------------------------------------------------
class TestEngine:
    def test_bare_noqa_suppresses(self):
        src = "xs = list({1, 2})  # noqa\n"
        assert LintEngine().check_source(src) == []

    def test_coded_noqa_suppresses_only_named_rules(self):
        src = "xs = list({1, 2})  # noqa: REP102\n"
        assert LintEngine().check_source(src) == []
        other = "xs = list({1, 2})  # noqa: REP101\n"
        assert _ids(LintEngine().check_source(other)) == ["REP102"]

    def test_syntax_error_reports_rep000(self):
        out = LintEngine().check_source("def f(:\n", "broken.py")
        assert _ids(out) == ["REP000"]
        assert out[0].path == "broken.py"

    def test_violations_sorted_deterministically(self):
        src = SEEDED_FIXTURES["REP104"] + SEEDED_FIXTURES["REP103"]
        a = LintEngine().check_source(src)
        b = LintEngine().check_source(src)
        assert a == b == sorted(a)

    def test_directory_walk_finds_nested_file(self, tmp_path):
        pkg = tmp_path / "a" / "b"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(SEEDED_FIXTURES["REP103"])
        (pkg / "notes.txt").write_text("not python")
        out = analyze_paths([str(tmp_path)])
        assert _ids(out) == ["REP103"]

    def test_json_format(self):
        out = LintEngine().check_source(SEEDED_FIXTURES["REP104"])
        data = json.loads(format_violations(out, fmt="json"))
        assert data["count"] == 1
        assert data["violations"][0]["rule"] == "REP104"

    def test_rule_catalog_complete(self):
        assert [r.id for r in ALL_RULES] == \
            ["REP101", "REP102", "REP103", "REP104", "REP105", "REP106"]
        with pytest.raises(KeyError):
            rule_by_id("REP999")


# ----------------------------------------------------------------------
# Suppression handling: noqa scoping, unknown-rule warnings, JSON schema
# ----------------------------------------------------------------------
class TestSuppressionHandling:
    # One line tripping two rules: unseeded np.random (REP101) inside a
    # comprehension over a set literal (REP102).
    MULTI = "xs = [np.random.rand() for x in {1, 2}]"

    def test_multi_rule_line_trips_both_rules(self):
        assert _ids(LintEngine().check_source(self.MULTI + "\n")) == [
            "REP101",
            "REP102",
        ]

    def test_coded_noqa_scopes_to_named_rule_only(self):
        out = LintEngine().check_source(self.MULTI + "  # noqa: REP101\n")
        assert _ids(out) == ["REP102"]
        out = LintEngine().check_source(self.MULTI + "  # noqa: REP102\n")
        assert _ids(out) == ["REP101"]

    def test_multi_code_noqa_suppresses_each_named_rule(self):
        src = self.MULTI + "  # noqa: REP101, REP102\n"
        assert LintEngine().check_source(src) == []

    def test_bare_noqa_suppresses_every_rule_on_the_line(self):
        assert LintEngine().check_source(self.MULTI + "  # noqa\n") == []

    def test_noqa_only_covers_its_own_line(self):
        src = "xs = list({1, 2})  # noqa: REP102\nys = list({3, 4})\n"
        out = LintEngine().check_source(src)
        assert _ids(out) == ["REP102"]
        assert out[0].line == 2

    def test_unknown_rep_code_in_noqa_warns(self):
        engine = LintEngine()
        engine.check_source("x = 1  # noqa: REP999\n", "mod.py")
        assert engine.warnings == ["mod.py:1: noqa names unknown rule REP999"]

    def test_known_and_foreign_codes_do_not_warn(self):
        engine = LintEngine()
        # Registered lint rule, registered concurrency rule, another
        # tool's code, and a bare noqa: none are typos worth warning on.
        engine.check_source(
            "a = 1  # noqa: REP102\n"
            "b = 2  # noqa: REP202\n"
            "c = 3  # noqa: E731\n"
            "d = 4  # noqa\n",
            "mod.py",
        )
        assert engine.warnings == []

    def test_check_paths_resets_and_collects_warnings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1  # noqa: REP998\n")
        engine = LintEngine()
        engine.warnings = ["stale entry from a previous run"]
        engine.check_paths([str(tmp_path)])
        assert engine.warnings == [
            f"{bad}:1: noqa names unknown rule REP998"
        ]

    def test_json_schema_is_stable(self):
        out = LintEngine().check_source(self.MULTI + "\n", "mod.py")
        data = json.loads(format_violations(out, fmt="json"))
        assert sorted(data) == ["count", "violations"]
        assert data["count"] == len(data["violations"]) == 2
        for entry in data["violations"]:
            assert sorted(entry) == [
                "col", "line", "message", "path", "rule",
            ]
            assert entry["path"] == "mod.py"
        # Deterministic serialization: same findings, same bytes.
        assert format_violations(out, fmt="json") == format_violations(
            out, fmt="json"
        )

    def test_json_empty_payload(self):
        data = json.loads(format_violations([], fmt="json"))
        assert data == {"count": 0, "violations": []}

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown format"):
            format_violations([], fmt="yaml")


# ----------------------------------------------------------------------
# Acceptance: the fixed tree is clean; the CLI gates on it
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_src_tree_is_clean(self):
        assert analyze_paths(["src"]) == []

    def test_cli_clean_tree_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["analyze", "src/repro/analysis"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text(SEEDED_FIXTURES["REP101"])
        assert main(["analyze", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out and "1 violation" in out

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
