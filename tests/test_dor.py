"""Tests for one-round dimension-ordered routing (repro.routing.dor)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import FaultSet, Mesh, Torus
from repro.routing import (
    LineFaultIndex,
    Ordering,
    ascending,
    dor_path,
    dor_segments,
    one_round_reachable,
    path_is_fault_free,
    torus_dor_path,
    torus_one_round_reachable,
    xy,
    xyz,
)

from conftest import faulty_meshes_with_ordering, good_node_pairs


class TestDorPath:
    def test_paper_example_route(self):
        # Section 2.1: XY route (0,0) -> (3,2) passes (1,0),(2,0),(3,0),(3,1).
        m = Mesh((12, 12))
        path = dor_path(m, xy(), (0, 0), (3, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2)]

    def test_reverse_route_differs(self):
        # ...while (3,2) -> (0,0) passes (2,2),(1,2),(0,2),(0,1).
        m = Mesh((12, 12))
        path = dor_path(m, xy(), (3, 2), (0, 0))
        assert path == [(3, 2), (2, 2), (1, 2), (0, 2), (0, 1), (0, 0)]

    def test_xyz_route(self):
        m = Mesh((4, 4, 4))
        path = dor_path(m, xyz(), (0, 0, 0), (1, 1, 1))
        assert path == [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)]

    def test_trivial_route(self):
        m = Mesh((4, 4))
        assert dor_path(m, xy(), (2, 2), (2, 2)) == [(2, 2)]

    def test_custom_ordering(self):
        m = Mesh((4, 4))
        path = dor_path(m, Ordering((1, 0)), (0, 0), (2, 2))
        assert path == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_rejects_bad_endpoints(self):
        with pytest.raises(ValueError):
            dor_path(Mesh((3, 3)), xy(), (0, 0), (3, 0))

    @given(faulty_meshes_with_ordering(max_node_faults=0, max_link_faults=0))
    @settings(max_examples=25, deadline=None)
    def test_path_properties(self, fm):
        faults, pi = fm
        mesh = faults.mesh
        for v, w in good_node_pairs(faults, 5):
            path = dor_path(mesh, pi, v, w)
            assert path[0] == v and path[-1] == w
            assert len(path) == mesh.l1_distance(v, w) + 1  # minimal
            for a, b in zip(path, path[1:]):
                assert mesh.are_adjacent(a, b)


class TestSegments:
    def test_segment_decomposition(self):
        segs = dor_segments(xy(), (0, 3), (5, 1))
        assert segs == [(0, (3,), 0, 5), (1, (5,), 3, 1)]

    def test_segments_cover_path(self):
        m = Mesh((6, 6, 6))
        v, w = (1, 4, 2), (3, 0, 5)
        segs = dor_segments(xyz(), v, w)
        assert len(segs) == 3
        # Total travel equals L1 distance.
        assert sum(abs(b - a) for _, _, a, b in segs) == m.l1_distance(v, w)


class TestOneRoundReachable:
    def test_paper_blocking_example(self):
        # (3,2) is not XY-reachable from (0,0) if (2,0) is faulty...
        m = Mesh((12, 12))
        faults = FaultSet(m, [(2, 0)])
        idx = LineFaultIndex(faults)
        assert not one_round_reachable(idx, xy(), (0, 0), (3, 2))
        # ...but (0,0) IS reachable from (3,2).
        assert one_round_reachable(idx, xy(), (3, 2), (0, 0))

    def test_endpoint_faults_block(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, [(0, 0), (5, 5)])
        idx = LineFaultIndex(faults)
        assert not one_round_reachable(idx, xy(), (0, 0), (1, 1))
        assert not one_round_reachable(idx, xy(), (1, 1), (5, 5))

    def test_self_reachability(self):
        m = Mesh((6, 6))
        idx = LineFaultIndex(FaultSet(m, [(3, 3)]))
        assert one_round_reachable(idx, xy(), (1, 1), (1, 1))
        assert not one_round_reachable(idx, xy(), (3, 3), (3, 3))

    def test_directed_link_fault(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, (), [((2, 0), (3, 0))])
        idx = LineFaultIndex(faults)
        assert not one_round_reachable(idx, xy(), (0, 0), (4, 0))
        assert one_round_reachable(idx, xy(), (4, 0), (0, 0))  # reverse ok

    @given(faulty_meshes_with_ordering())
    @settings(max_examples=40, deadline=None)
    def test_matches_explicit_path_check(self, fm):
        """one_round_reachable must agree with walking the explicit
        route and checking every node and link."""
        faults, pi = fm
        mesh = faults.mesh
        idx = LineFaultIndex(faults)
        for v, w in good_node_pairs(faults, 8):
            expected = path_is_fault_free(faults, dor_path(mesh, pi, v, w))
            assert one_round_reachable(idx, pi, v, w) == expected


class TestTorusRouting:
    def test_wraps_minimally(self):
        t = Torus((8, 8))
        path = torus_dor_path(t, xy(), (7, 0), (1, 0))
        # Wrap through 0 (2 hops) instead of going back 6 hops.
        assert path == [(7, 0), (0, 0), (1, 0)]

    def test_tie_breaks_forward(self):
        t = Torus((4, 4))
        path = torus_dor_path(t, xy(), (0, 0), (2, 0))
        assert path == [(0, 0), (1, 0), (2, 0)]

    def test_reachability(self):
        t = Torus((6, 6))
        faults = FaultSet(t, [(0, 0)])
        # (5,1) -> (1,1): minimal route wraps through x=0 at y=1 (clear).
        assert torus_one_round_reachable(faults, xy(), (5, 1), (1, 1))
        # (5,0) -> (1,0): wraps through the faulty (0,0).
        assert not torus_one_round_reachable(faults, xy(), (5, 0), (1, 0))

    def test_requires_torus(self):
        m = Mesh((4, 4))
        faults = FaultSet(m)
        with pytest.raises(TypeError):
            torus_one_round_reachable(faults, xy(), (0, 0), (1, 1))
