"""The unified telemetry layer: spans, registry, exporters, CLI.

Four properties pinned here, matching the observability contract:

1. **Deterministic span identity** — span ids derive from
   ``blake2b(name:seq)``, not clocks, so two runs of the same seeded
   workload emit byte-identical redacted event streams; nesting
   (parent/depth) follows the contextvar scoping, and spans opened on
   worker threads never see another thread's span as a parent.
2. **Exporter output on the seeded smoke** — the Prometheus text,
   NDJSON, and JSON renders of :func:`run_telemetry_smoke` contain the
   lamb-phase / simulator / control-plane / trial-engine series the
   docs promise, and are byte-identical across two runs under
   ``redact_timings=True`` (the invariant ``make obs-smoke`` diffs).
3. **Thread safety** — counters, histograms, and the event log take
   concurrent mutation from many threads (including compiler route
   workers sharing one registry) without losing updates.
4. **CLI round-trip** — ``repro stats --telemetry PREFIX`` writes all
   three export files and each parses back to the same registry state.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.mesh import Mesh
from repro.mesh.faults import FaultSet
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    events_to_ndjson,
    export_all,
    get_registry,
    run_telemetry_smoke,
    snapshot_to_json,
    to_prometheus,
    use_registry,
)
from repro.routing.ordering import repeated, xy
from repro.service.compiler import ReconfigurationCompiler
from repro.service.metrics import ServiceMetrics

#: Shared smoke parameters: small enough to keep the suite quick,
#: large enough that the mid-run fault still tears out live messages.
SMOKE_KW = dict(seed=0, messages=40)


@pytest.fixture(scope="module")
def smoke_pair():
    """Two independent runs of the seeded smoke (for byte-diffing)."""
    return run_telemetry_smoke(**SMOKE_KW), run_telemetry_smoke(**SMOKE_KW)


# ----------------------------------------------------------------------
# 1. Spans: nesting, determinism, thread isolation
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        reg = TelemetryRegistry()
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
            with reg.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        events = {e["name"]: e for e in reg.events() if e["kind"] == "span"}
        assert events["inner"]["parent"] == events["outer"]["id"]
        assert events["sibling"]["parent"] == events["outer"]["id"]
        assert events["outer"]["parent"] is None
        assert events["outer"]["depth"] == 0
        # Exiting restores the enclosing scope: a span opened after
        # the outer closes is a root again.
        with reg.span("later") as later:
            assert later.parent_id is None

    def test_span_seconds_populated_after_exit(self):
        reg = TelemetryRegistry()
        with reg.span("timed") as sp:
            pass
        assert sp.seconds >= 0.0
        hist = reg.histogram("span_seconds", span="timed")
        assert hist.total == 1
        assert reg.counter("spans_total", span="timed").value == 1

    def test_span_ids_are_seeded_deterministic(self):
        def emit(reg):
            with reg.span("a", k=2):
                with reg.span("b"):
                    pass
            with reg.span("a", k=2):
                pass
            return reg

        a = emit(TelemetryRegistry())
        b = emit(TelemetryRegistry())
        # Identical redacted event streams => identical ids, parents,
        # sequence numbers, attrs.
        assert events_to_ndjson(a, redact_timings=True) == events_to_ndjson(
            b, redact_timings=True
        )
        # Same name, later sequence number => different id (ids encode
        # position, not just the label).
        ids = [e["id"] for e in a.events() if e["name"] == "a"]
        assert len(ids) == 2 and ids[0] != ids[1]

    def test_spans_on_worker_threads_nest_independently(self):
        reg = TelemetryRegistry()
        seen = {}

        def worker():
            with reg.span("thread-root") as sp:
                seen["parent"] = sp.parent_id
                seen["depth"] = sp.depth

        with reg.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The contextvar does not leak across threads: the worker's
        # span is a root even though main had one open.
        assert seen == {"parent": None, "depth": 0}

    def test_span_attrs_land_in_event(self):
        reg = TelemetryRegistry()
        with reg.span("attrs", method="bipartite", f=3):
            pass
        (event,) = [e for e in reg.events() if e["kind"] == "span"]
        assert event["attr_method"] == "bipartite"
        assert event["attr_f"] == 3


# ----------------------------------------------------------------------
# Registry plumbing: event cap, slow ops, ambient scoping, reset
# ----------------------------------------------------------------------
class TestRegistry:
    def test_event_log_cap_counts_drops(self):
        reg = TelemetryRegistry(max_events=3)
        for i in range(5):
            reg.event("tick", i=i)
        snap = reg.snapshot()
        assert snap["events"]["recorded"] == 3
        assert snap["events"]["dropped"] == 2

    def test_slow_op_thresholding(self):
        reg = TelemetryRegistry()
        assert not reg.slow_op("fast", 0.001, threshold=1.0)
        assert reg.slow_op("slow", 2.0, threshold=1.0, digest="abc")
        # Both observe op_seconds; only the slow one logs + counts.
        assert reg.histogram("op_seconds", op="fast").total == 1
        assert reg.counter("slow_ops_total", op="slow").value == 1
        assert reg.counter("slow_ops_total", op="fast").value == 0
        (event,) = [e for e in reg.events() if e["kind"] == "slow_op"]
        assert event["op"] == "slow"
        assert event["digest"] == "abc"
        assert event["threshold_s"] == 1.0

    def test_use_registry_installs_and_restores(self):
        before = get_registry()
        with use_registry() as reg:
            assert get_registry() is reg
            assert reg is not before
        assert get_registry() is before

    def test_reset_is_idempotent_and_total(self):
        reg = TelemetryRegistry()
        reg.inc("c")
        reg.observe("h", 0.1)
        reg.event("e")
        reg.reset()
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        assert snap["events"] == {"dropped": 0, "recorded": 0}

    def test_metric_primitives_guard_invalid_input(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)
        with pytest.raises(ValueError):
            Histogram().observe(-0.5)
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)
        g = Gauge()
        g.set(7)
        assert g.value == 7.0
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))


# ----------------------------------------------------------------------
# 2. Exporters: format shape + smoke determinism
# ----------------------------------------------------------------------
class TestExporters:
    def _tiny_registry(self):
        reg = TelemetryRegistry()
        reg.inc("requests_total", 3, route="xy")
        reg.gauge("epoch", value=4.0)
        reg.observe("latency_seconds", 0.003, op="route")
        return reg

    def test_prometheus_suffixes_go_before_labels(self):
        text = to_prometheus(self._tiny_registry())
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{route="xy"} 3' in text
        assert "# TYPE epoch gauge" in text
        assert "epoch 4" in text
        assert "# TYPE latency_seconds histogram" in text
        # The histogram suffix lands on the family name, not after the
        # label braces.
        assert 'latency_seconds_bucket{op="route",le="+Inf"} 1' in text
        assert 'latency_seconds_count{op="route"} 1' in text
        assert 'latency_seconds_sum{op="route"}' in text
        assert "{op=\"route\"}_bucket" not in text

    def test_prometheus_redaction_collapses_buckets(self):
        text = to_prometheus(self._tiny_registry(), redact_timings=True)
        # Bucket placement is timing information: redacted output keeps
        # only the +Inf total.
        assert 'latency_seconds_bucket{op="route",le="+Inf"} 1' in text
        assert 'latency_seconds_sum{op="route"} 0.0' in text
        for line in text.splitlines():
            if "_bucket" in line and '+Inf' not in line:
                assert line.endswith(" 0")

    def test_ndjson_lines_parse_and_redact(self):
        reg = TelemetryRegistry()
        with reg.span("x"):
            pass
        reg.slow_op("op", 5.0, threshold=1.0)
        lines = events_to_ndjson(reg, redact_timings=True).splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["s"] == 0.0
        assert json.loads(lines[1])["threshold_s"] == 0.0

    def test_snapshot_json_round_trips(self):
        reg = self._tiny_registry()
        snap = json.loads(snapshot_to_json(reg))
        assert snap["counters"]['requests_total{route="xy"}'] == 3
        assert snap["gauges"]["epoch"] == 4.0
        hist = snap["histograms"]['latency_seconds{op="route"}']
        assert hist["count"] == 1

    def test_export_all_writes_three_formats(self, tmp_path):
        prefix = str(tmp_path / "tel")
        reg = self._tiny_registry()
        reg.event("marker", note="export")
        written = export_all(reg, prefix)
        assert sorted(written) == ["json", "ndjson", "prom"]
        for fmt, path in written.items():
            assert path == f"{prefix}.{fmt}"
            with open(path) as fh:
                assert fh.read()


class TestSmokeDeterminism:
    """The seeded smoke behind ``repro stats`` / ``make obs-smoke``."""

    def test_redacted_exports_byte_identical(self, smoke_pair):
        a, b = smoke_pair
        for render in (to_prometheus, events_to_ndjson, snapshot_to_json):
            assert render(a, redact_timings=True) == render(
                b, redact_timings=True
            ), f"{render.__name__} differs between seeded runs"

    def test_prometheus_contains_every_layer(self, smoke_pair):
        text = to_prometheus(smoke_pair[0], redact_timings=True)
        expected = (
            # lamb pipeline phase spans (Fig. 14 stages)
            'span_seconds_bucket{span="lamb.partition",le="+Inf"}',
            'span_seconds_bucket{span="lamb.reachability",le="+Inf"}',
            'span_seconds_bucket{span="lamb.wvc",le="+Inf"}',
            # once directly + once per fresh compile (miss + delta)
            'spans_total{span="lamb.find_lamb_set"} 3',
            "lamb_runs_total",
            # simulator per-run counters
            'sim_cycles_total{engine="frontier"}',
            'sim_stall_cycles_total{engine="frontier"}',
            'sim_park_events_total{engine="frontier"}',
            'sim_aborts_total{engine="frontier",reason="endpoint-failed"} 1',
            'sim_retries_total{engine="frontier"}',
            # control plane (ServiceMetrics fronting the registry)
            "service_compiles_total 2",
            "service_incremental_compiles_total 1",
            'service_cache_total{result="hit"} 1',
            'service_cache_total{result="miss"} 2',  # fresh + delta
            "service_queries_total 1",
            # trial engine chunk accounting
            "trial_chunks_total 1",
            "trials_total 8",
            # registry self-accounting
            "telemetry_events_dropped 0",
        )
        for needle in expected:
            assert needle in text, f"missing series: {needle}"

    def test_ndjson_smoke_spans_nest_under_pipeline(self, smoke_pair):
        records = [
            json.loads(line)
            for line in events_to_ndjson(smoke_pair[0]).splitlines()
        ]
        spans = {r["name"]: r for r in records if r["kind"] == "span"}
        root = spans["lamb.find_lamb_set"]
        for phase in ("lamb.partition", "lamb.reachability", "lamb.wvc"):
            assert spans[phase]["parent"] == root["id"]
            assert spans[phase]["depth"] == root["depth"] + 1

    def test_snapshot_matches_stats_rpc_shape(self, smoke_pair):
        snap = json.loads(snapshot_to_json(smoke_pair[0]))
        assert set(snap) == {"counters", "events", "gauges", "histograms"}
        assert snap["gauges"]["service_epoch"] >= 1.0  # delta bumped it


# ----------------------------------------------------------------------
# 3. Thread safety
# ----------------------------------------------------------------------
class TestThreadSafety:
    def test_concurrent_counter_and_histogram_updates_exact(self):
        reg = TelemetryRegistry()
        threads, per = 16, 500

        def hammer(i):
            for _ in range(per):
                reg.inc("hammer_total", worker=i % 4)
                reg.observe("hammer_seconds", 0.001)
            return i

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))
        total = sum(
            reg.counter("hammer_total", worker=w).value for w in range(4)
        )
        assert total == threads * per
        assert reg.histogram("hammer_seconds").total == threads * per

    def test_concurrent_events_respect_cap_exactly(self):
        reg = TelemetryRegistry(max_events=100)

        def emit(i):
            for j in range(50):
                reg.event("tick", i=i, j=j)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(emit, range(8)))
        snap = reg.snapshot()
        assert snap["events"]["recorded"] == 100
        assert snap["events"]["dropped"] == 8 * 50 - 100

    def test_compiler_route_workers_share_one_registry(self):
        """Route queries from many threads against one compiler must
        account exactly in the shared registry (the serve deployment
        shape: worker threads + one ambient registry)."""
        reg = TelemetryRegistry()
        mesh = Mesh((8, 8))
        orderings = repeated(xy(), 2)
        compiler = ReconfigurationCompiler(
            mesh, orderings, metrics=ServiceMetrics(registry=reg)
        )
        faults = FaultSet(mesh, ((1, 1),))
        compiler.compile(faults)
        art = compiler.current
        assert art is not None
        survivors = [
            v
            for v in mesh.nodes()
            if not art.result.faults.node_is_faulty(v)
            and v not in art.result.lambs
        ]
        threads, per = 8, 25

        def query(i):
            src = survivors[i % len(survivors)]
            dst = survivors[-1 - (i % (len(survivors) - 1))]
            for _ in range(per):
                compiler.route(src, dst)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(query, range(threads)))
        expected = threads * per
        assert compiler.metrics.queries.value == expected
        assert reg.counter("service_queries_total").value == expected
        assert reg.histogram("service_query_seconds").total == expected
        # Every route also feeds the generic slow-op histogram.
        assert (
            reg.histogram("op_seconds", op="service.query").total == expected
        )


# ----------------------------------------------------------------------
# 4. CLI --telemetry round-trip
# ----------------------------------------------------------------------
class TestCliRoundTrip:
    def test_stats_telemetry_exports_parse_back(self, tmp_path, capsys):
        from repro.cli import main

        prefix = str(tmp_path / "tel")
        rc = main(
            [
                "stats",
                "--redact-timings",
                "--format",
                "json",
                "--messages",
                "20",
                "--telemetry",
                prefix,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # stdout carries the JSON snapshot followed by the export log.
        body, _, tail = out.partition("telemetry: wrote ")
        printed = json.loads(body)
        with open(prefix + ".json") as fh:
            exported = json.load(fh)
        assert exported == printed
        assert exported["counters"]["trials_total"] == 8
        assert tail  # at least one "telemetry: wrote" line
        with open(prefix + ".prom") as fh:
            prom = fh.read()
        assert "# TYPE span_seconds histogram" in prom
        assert "sim_cycles_total" in prom
        with open(prefix + ".ndjson") as fh:
            for line in fh:
                record = json.loads(line)
                if "s" in record:
                    assert record["s"] == 0.0

    def test_stats_redacted_runs_are_byte_identical(self, tmp_path, capsys):
        """The exact invariant ``make obs-smoke`` enforces, through
        the CLI entry point."""
        from repro.cli import main

        outputs = []
        for tag in ("a", "b"):
            prefix = str(tmp_path / tag)
            assert (
                main(
                    [
                        "stats",
                        "--redact-timings",
                        "--format",
                        "prom",
                        "--messages",
                        "20",
                        "--telemetry",
                        prefix,
                    ]
                )
                == 0
            )
            capsys.readouterr()
            files = {}
            for ext in ("prom", "ndjson", "json"):
                with open(f"{prefix}.{ext}") as fh:
                    files[ext] = fh.read()
            outputs.append(files)
        assert outputs[0] == outputs[1]
