"""Tests for the live-fault chaos layer (repro.wormhole.chaos, the
simulator's abort/drain/retry machinery, and the degradation ladder of
repro.core.reconfigure)."""

import numpy as np
import pytest

from repro.core import (
    ReconfigurationError,
    ReconfigurationManager,
    largest_good_component,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import repeated, xy
from repro.wormhole import (
    DeadlockError,
    FaultEvent,
    FaultSchedule,
    Hop,
    SimulationError,
    SimulationTimeout,
    Tracer,
    WormholeSimulator,
    parse_fault_spec,
    seeded_chaos_run,
)
from repro.wormhole.simulator import (
    ABORT_ENDPOINT_FAILED,
    ABORT_QUARANTINED,
    ABORT_RETRY_BUDGET,
    ABORT_UNREACHABLE,
)

MESH = Mesh((8, 8))


def live_sim(schedule=None, k=2, fault_nodes=(), **kw):
    return WormholeSimulator(
        FaultSet(MESH, list(fault_nodes)),
        repeated(xy(), k),
        schedule=schedule,
        **kw,
    )


class TestFaultSpecs:
    def test_parse_node(self):
        ev = parse_fault_spec("120:3,4")
        assert ev == FaultEvent(120, ((3, 4),), ())

    def test_parse_link(self):
        ev = parse_fault_spec("40:1,2-1,3")
        assert ev == FaultEvent(40, (), ((((1, 2)), (1, 3)),))

    def test_parse_3d_node(self):
        assert parse_fault_spec("7:1,2,3").node_faults == ((1, 2, 3),)

    @pytest.mark.parametrize("bad", ["", "x:1,2", "10", "10:", "10:a,b"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, ((0, 0),))


class TestFaultSchedule:
    def test_sorted_and_merged(self):
        sched = FaultSchedule(
            [
                FaultEvent(50, ((1, 1),)),
                FaultEvent(10, ((2, 2),)),
                FaultEvent(50, (), (((0, 0), (0, 1)),)),
            ]
        )
        assert len(sched) == 2  # the two cycle-50 events merged
        assert [ev.cycle for ev in sched] == [10, 50]
        assert sched[1].num_faults == 2
        assert sched.last_cycle == 50
        assert sched.total_faults == 3

    def test_from_specs(self):
        sched = FaultSchedule.from_specs(["30:1,1", "10:0,0-1,0"])
        assert [ev.cycle for ev in sched] == [10, 30]

    def test_random_is_seeded(self):
        a = FaultSchedule.random(MESH, 4, np.random.default_rng(3))
        b = FaultSchedule.random(MESH, 4, np.random.default_rng(3))
        assert a.events == b.events
        assert len(a) == 4

    def test_random_avoids(self):
        avoid = [(0, 0), (1, 1)]
        sched = FaultSchedule.random(
            Mesh((3, 3)), 3, np.random.default_rng(0), avoid=avoid
        )
        killed = {v for ev in sched for v in ev.node_faults}
        assert killed.isdisjoint(set(avoid))

    def test_random_refuses_overkill(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(Mesh((2, 2)), 5, np.random.default_rng(0))


class TestLiveFaults:
    """Simulator-level abort/drain/retry semantics."""

    def test_retry_then_deliver(self):
        sched = FaultSchedule([FaultEvent(3, ((3, 0),))])
        sim = live_sim(sched)
        m = sim.send((0, 0), (5, 0), num_flits=4)
        stats = sim.run()
        assert m.is_delivered and m.was_retried
        assert m.attempts == 2
        # New route avoids the dead node.
        assert all((3, 0) not in (h.src, h.dst) for h in m.hops)
        # Total latency includes abort + backoff time; plain latency is
        # the clean final attempt.
        assert m.total_latency > m.latency
        assert stats.retried_delivered == 1
        assert stats.total_retries == 1
        assert stats.all_accounted

    def test_dead_destination_aborts(self):
        sched = FaultSchedule([FaultEvent(3, ((5, 0),))])
        sim = live_sim(sched)
        m = sim.send((0, 0), (5, 0), num_flits=4)
        stats = sim.run()
        assert m.abort_reason == ABORT_ENDPOINT_FAILED
        assert stats.aborted == 1
        assert stats.abort_reasons == ((ABORT_ENDPOINT_FAILED, 1),)
        assert stats.all_accounted  # aborted-with-reason, not lost

    def test_unreachable_after_fault(self):
        # k=1 XY: the only route (0,0)->(7,0) runs along row 0, so
        # killing (3,0) mid-flight leaves no alternative.
        sched = FaultSchedule([FaultEvent(3, ((3, 0),))])
        sim = live_sim(sched, k=1)
        m = sim.send((0, 0), (7, 0), num_flits=4)
        sim.run()
        assert m.abort_reason == ABORT_UNREACHABLE

    def test_retry_budget_exhausted(self):
        sched = FaultSchedule([FaultEvent(3, ((3, 0),))])
        sim = live_sim(sched, max_retries=0)
        m = sim.send((0, 0), (5, 0), num_flits=4)
        sim.run()
        assert m.abort_reason == ABORT_RETRY_BUDGET

    def test_quarantined_endpoint_aborts(self):
        sim = live_sim()
        m = sim.send((0, 0), (5, 0), num_flits=8)
        for _ in range(3):
            sim.step()
        sim.quarantine([(5, 0)])
        victims = sim.inject_faults(node_faults=[(3, 0)])
        assert victims == [m]
        assert m.abort_reason == ABORT_QUARANTINED
        assert sim.run().all_accounted

    def test_reroute_before_injection_is_free(self):
        # A fault before the message enters the network swaps the route
        # silently: no retry is charged.
        sched = FaultSchedule([FaultEvent(2, ((3, 0),))])
        sim = live_sim(sched)
        m = sim.send((0, 0), (5, 0), num_flits=4, inject_cycle=10)
        stats = sim.run()
        assert m.is_delivered and m.attempts == 1
        assert all((3, 0) not in (h.src, h.dst) for h in m.hops)
        assert stats.total_retries == 0

    def test_stale_event_is_noop(self):
        sim = live_sim(fault_nodes=[(3, 0)])
        assert sim.inject_faults(node_faults=[(3, 0)]) == []
        assert sim.fault_events_applied == 0

    def test_unaffected_messages_keep_flying(self):
        sched = FaultSchedule([FaultEvent(3, ((3, 0),))])
        sim = live_sim(sched)
        victim = sim.send((0, 0), (5, 0), num_flits=4)
        bystander = sim.send((0, 7), (5, 7), num_flits=4)
        sim.run()
        assert bystander.is_delivered and not bystander.was_retried
        assert victim.is_delivered and victim.was_retried

    def test_fault_resources_are_released(self):
        """Tear-down frees every (link, VC) the victim owned."""
        sched = FaultSchedule([FaultEvent(4, ((3, 0),))])
        sim = live_sim(sched)
        m = sim.send((0, 0), (5, 0), num_flits=16)
        for _ in range(5):
            sim.step()
        # The victim was torn out and is backing off: owns nothing.
        assert not sim.net.owned_resources(m.msg_id)
        assert sim.run().all_accounted

    def test_exponential_backoff(self):
        sched = FaultSchedule([FaultEvent(3, ((3, 0),))])
        sim = live_sim(sched, retry_backoff=16)
        m = sim.send((0, 0), (5, 0), num_flits=4)
        sim.run()
        # First retry waits retry_backoff * 2**0 cycles after the abort.
        assert m.inject_cycle == 3 + 16

    def test_tracer_records_fault_and_abort(self):
        tracer = Tracer()
        sched = FaultSchedule(
            [FaultEvent(3, ((3, 0),)), FaultEvent(6, ((5, 0),))]
        )
        sim = live_sim(sched, tracer=tracer)
        sim.send((0, 0), (5, 0), num_flits=4)
        sim.run()
        kinds = {e.kind for e in tracer.events}
        assert {"fault", "abort", "reinject"} <= kinds
        assert tracer.abort_reasons()[ABORT_ENDPOINT_FAILED] == 1


class TestDegradationLadder:
    def test_plain_epoch_no_degradation(self):
        mgr = ReconfigurationManager(Mesh((8, 8)), repeated(xy(), 2))
        epoch = mgr.report_faults_degraded(node_faults=[(3, 3)])
        assert not epoch.degraded
        assert epoch.escalated_rounds == 0 and epoch.quarantined == ()

    def test_escalates_rounds_under_budget(self):
        # k=1 needs many lambs for these faults; k=2 needs none.  A
        # tight budget forces the ladder onto rung 2 and the escalated
        # discipline is adopted.
        mgr = ReconfigurationManager(Mesh((8, 8)), repeated(xy(), 1))
        epoch = mgr.report_faults_degraded(
            node_faults=[(3, 3), (4, 4)], lamb_budget=2, max_extra_rounds=1
        )
        assert epoch.escalated_rounds == 1
        assert epoch.degraded
        assert mgr.orderings.k == 2  # adopted for later epochs
        assert epoch.num_lambs <= 2

    def test_quarantines_disconnected_corner(self):
        # (1,0) and (0,1) dead isolate the corner (0,0); with budget 0
        # no lamb set fits, so the ladder gives the corner up.
        mgr = ReconfigurationManager(Mesh((4, 4)), repeated(xy(), 2))
        epoch = mgr.report_faults_degraded(
            node_faults=[(1, 0), (0, 1)], lamb_budget=0, max_extra_rounds=0
        )
        assert epoch.quarantined == ((0, 0),)
        assert epoch.degraded
        assert mgr.quarantined == frozenset({(0, 0)})
        assert epoch.num_lambs == 0
        # The quarantined node is treated as a fault in the result.
        assert epoch.result.faults.node_is_faulty((0, 0))

    def test_quarantine_is_sticky_across_epochs(self):
        mgr = ReconfigurationManager(Mesh((4, 4)), repeated(xy(), 2))
        mgr.report_faults_degraded(
            node_faults=[(1, 0), (0, 1)], lamb_budget=0, max_extra_rounds=0
        )
        epoch = mgr.report_faults_degraded(node_faults=[(3, 3)])
        assert epoch.result.faults.node_is_faulty((0, 0))

    def test_largest_good_component_split(self):
        mesh = Mesh((4, 4))
        faults = FaultSet(mesh, [(1, 0), (0, 1)])
        big, rest = largest_good_component(faults)
        assert rest == {(0, 0)}
        assert len(big) == mesh.num_nodes - 2 - 1

    def test_reports_error_only_when_all_rungs_fail(self):
        # Kill everything but one node: no traffic is routable, but the
        # single-node machine still yields an (empty) lamb set -- the
        # ladder must not crash.
        mesh = Mesh((3, 3))
        nodes = [v for v in mesh.nodes() if v != (0, 0)]
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        epoch = mgr.report_faults_degraded(node_faults=nodes)
        assert epoch.num_lambs == 0

    def test_no_new_faults_rejected(self):
        mgr = ReconfigurationManager(Mesh((4, 4)), repeated(xy(), 2))
        mgr.report_faults_degraded(node_faults=[(1, 1)])
        with pytest.raises(ValueError):
            mgr.report_faults_degraded()

    def test_non_domain_exception_propagates(self, monkeypatch):
        # Regression: the ladder's bare ``except Exception`` used to
        # swallow *any* failure — including genuine bugs like a
        # TypeError from a broken pipeline — and report "every rung
        # failed" instead of crashing loudly.
        import repro.core.reconfigure as reconf

        def boom(*args, **kwargs):
            raise TypeError("broken pipeline argument")

        monkeypatch.setattr(reconf, "find_lamb_set", boom)
        mgr = ReconfigurationManager(Mesh((4, 4)), repeated(xy(), 2))
        with pytest.raises(TypeError, match="broken pipeline argument"):
            mgr.report_faults_degraded(node_faults=[(1, 1)])

    def test_domain_failure_reason_recorded(self, monkeypatch):
        # A ValueError is a legitimate rung failure: the ladder climbs
        # on, but the reason lands on the epoch (and, when every rung
        # dies, in the ReconfigurationError message).
        import repro.core.reconfigure as reconf
        from repro.obs import use_registry

        real = reconf.find_lamb_set
        calls = {"n": 0}

        def first_rung_fails(faults, orderings, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("degenerate partition")
            return real(faults, orderings, **kwargs)

        monkeypatch.setattr(reconf, "find_lamb_set", first_rung_fails)
        mgr = ReconfigurationManager(Mesh((8, 8)), repeated(xy(), 1))
        with use_registry() as reg:
            epoch = mgr.report_faults_degraded(
                node_faults=[(3, 3)], max_extra_rounds=1
            )
        assert epoch.rung_failures == (
            "k=1: ValueError: degenerate partition",
        )
        counters = reg.snapshot()["counters"]
        assert counters['ladder_rung_failures_total{error="ValueError"}'] == 1

    def test_all_rungs_fail_reports_reasons(self, monkeypatch):
        import repro.core.reconfigure as reconf
        from repro.core import ReconfigurationError

        def always_fails(*args, **kwargs):
            raise ValueError("no feasible cover")

        monkeypatch.setattr(reconf, "find_lamb_set", always_fails)
        mgr = ReconfigurationManager(Mesh((4, 4)), repeated(xy(), 2))
        with pytest.raises(ReconfigurationError, match="no feasible cover"):
            mgr.report_faults_degraded(
                node_faults=[(1, 1)], max_extra_rounds=0
            )


class TestChaosAcceptance:
    """ISSUE acceptance: 8x8, >=3 mid-flight events, deterministic,
    >=3 reconfiguration epochs, no deadlock, every message accounted."""

    def test_seeded_run_meets_acceptance(self):
        report = seeded_chaos_run(
            widths=(8, 8), initial_faults=2, num_messages=120, num_events=3
        )
        assert report.fully_accounted  # no silent loss
        assert report.num_epochs >= 3
        assert report.fault_events_applied >= 3
        s = report.stats
        assert s.delivered + s.aborted == s.total_messages == 120
        assert s.in_flight == 0

    @pytest.mark.parametrize("seed", [0, 11])
    def test_seeded_run_is_deterministic(self, seed):
        a = seeded_chaos_run(num_messages=60, num_events=3, seed=seed)
        b = seeded_chaos_run(num_messages=60, num_events=3, seed=seed)
        assert a.stats == b.stats
        assert [e.num_lambs for e in a.epochs] == [
            e.num_lambs for e in b.epochs
        ]
        assert a.quarantined == b.quarantined
        assert a.final_rounds == b.final_rounds

    def test_epoch_lambs_stay_sticky(self):
        report = seeded_chaos_run(num_messages=40, num_events=4, seed=2)
        for prev, cur in zip(report.epochs, report.epochs[1:]):
            kept = {
                v
                for v in prev.result.lambs
                if not cur.result.faults.node_is_faulty(v)
            }
            assert kept <= set(cur.result.lambs)

    def test_summary_mentions_accounting(self):
        report = seeded_chaos_run(num_messages=30, num_events=2, seed=1)
        text = report.summary()
        assert "delivered" in text and "epoch" in text

    def test_zero_events_is_plain_simulation(self):
        report = seeded_chaos_run(num_messages=30, num_events=0, seed=4)
        s = report.stats
        assert report.num_epochs == 1  # just the initial configuration
        assert s.delivered == s.total_messages
        assert s.total_retries == 0


class TestTypedWatchdog:
    """Satellite (c): the simulator raises typed errors with stalled-
    message diagnostics instead of bare RuntimeError."""

    def _ring_sim(self):
        mesh = Mesh((4, 4))
        sim = WormholeSimulator(
            FaultSet(mesh),
            repeated(xy(), 2),
            vc_of_round=lambda t: 0,  # deliberately break the discipline
            num_vcs=1,
            buffer_flits=1,
        )
        ring = [(0, 0), (2, 0), (2, 2), (0, 2)]

        def L(a, b):
            path = [a]
            x, y = a
            while x != b[0]:
                x += 1 if b[0] > x else -1
                path.append((x, y))
            while y != b[1]:
                y += 1 if b[1] > y else -1
                path.append((x, y))
            return path

        for i in range(4):
            a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
            hops = [
                Hop(u, v, 0)
                for p in (L(a, b), L(b, c))
                for u, v in zip(p, p[1:])
            ]
            sim.send(a, c, num_flits=12, hops=hops)
        return sim

    def test_single_vc_deadlock_carries_diagnostics(self):
        with pytest.raises(DeadlockError) as exc:
            self._ring_sim().run(5000)
        err = exc.value
        assert isinstance(err, SimulationError)
        assert len(err.cycle) == 4  # non-empty wait-for cycle
        assert err.diagnostics is not None
        assert err.diagnostics.num_stalled == 4
        assert err.diagnostics.wait_graph  # the cycle's edges
        assert "wait-for cycle" in str(err)

    def test_timeout_is_typed_with_diagnostics(self):
        sim = live_sim()
        sim.send((0, 0), (7, 7), num_flits=4)
        with pytest.raises(SimulationTimeout) as exc:
            sim.run(max_cycles=2)
        err = exc.value
        assert isinstance(err, SimulationError)
        assert not isinstance(err, DeadlockError)
        assert err.max_cycles == 2
        assert err.diagnostics.num_stalled == 1
        (msg_id, head, hops, got, want) = err.diagnostics.stalled[0]
        assert want == 4 and got < want
        assert "did not drain" in str(err)  # legacy message preserved

    def test_timeout_describe_lists_messages(self):
        sim = live_sim()
        sim.send((0, 0), (7, 7), num_flits=4)
        with pytest.raises(SimulationTimeout) as exc:
            sim.run(max_cycles=2)
        assert "msg 0" in exc.value.diagnostics.describe()
