"""Public API surface tests: exports exist, docstrings present, and
the package-level doctests run."""

import doctest
import importlib
import inspect

import pytest

import repro

MODULES = [
    "repro",
    "repro.mesh",
    "repro.routing",
    "repro.graphs",
    "repro.core",
    "repro.wormhole",
    "repro.baselines",
    "repro.complexity",
    "repro.experiments",
    "repro.viz",
]

#: Modules whose docstring examples are executed as doctests.
DOCTEST_MODULES = [
    "repro",
    "repro.mesh.geometry",
    "repro.mesh.regions",
    "repro.routing.dor",
    "repro.graphs.maxflow",
    "repro.graphs.bipartite_vc",
    "repro.core.lamb",
    "repro.core.bounds",
    "repro.viz.ascii_art",
]


class TestExports:
    @pytest.mark.parametrize("name", MODULES)
    def test_all_exports_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} has no __all__"
        for symbol in mod.__all__:
            assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", MODULES)
    def test_module_docstrings(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and mod.__doc__.strip(), f"{name} undocumented"

    def test_public_callables_documented(self):
        """Every public function/class reachable from the top-level
        package must carry a docstring."""
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"repro.{symbol} undocumented"

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDoctests:
    @pytest.mark.parametrize("name", DOCTEST_MODULES)
    def test_module_doctests(self, name):
        mod = importlib.import_module(name)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {name}"


class TestQuickstartContract:
    def test_readme_quickstart(self):
        """The README's quickstart code, executed verbatim."""
        from repro import FaultSet, Mesh, find_lamb_set, repeated, xy

        mesh = Mesh((12, 12))
        faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
        result = find_lamb_set(faults, repeated(xy(), 2))
        assert sorted(result.lambs) == [(10, 11), (11, 10)]
        assert (result.num_ses, result.num_des) == (9, 7)
