"""The declarative workflow engine: registry/preset semantics, the
content-addressed checkpoint-resume runner, and the headline
acceptance property — a run SIGKILLed at a step boundary, resumed,
produces a final report byte-identical to an uninterrupted run with
every pre-kill step served from the ArtifactStore."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.obs import TelemetryRegistry, use_registry
from repro.service.store import ArtifactStore
from repro.workflow import (
    PRESETS,
    STEPS,
    StepRegistry,
    StepFailedError,
    UnknownPresetError,
    UnknownStepError,
    WorkflowError,
    WorkflowInterrupted,
    WorkflowPreset,
    WorkflowRunner,
    preset_by_name,
    preset_digest,
)
from repro.workflow.presets import spec


# ----------------------------------------------------------------------
# Synthetic fixtures: a tiny registry + preset the runner tests use
# ----------------------------------------------------------------------
def make_registry(log=None, boom_at=None, interrupt_at=None):
    """Three chained arithmetic steps; ``log`` records executions so
    tests can distinguish fresh runs from cache replays."""
    reg = StepRegistry()

    @reg.register("seed", "emit a constant", defaults={"value": 1})
    def seed(params, inputs):
        if log is not None:
            log.append("seed")
        _maybe_fail("seed", boom_at, interrupt_at)
        return {"value": params["value"]}

    @reg.register("double", "double the dependency",
                  digest_exclude=("jobs",))
    def double(params, inputs):
        if log is not None:
            log.append("double")
        _maybe_fail("double", boom_at, interrupt_at)
        (dep,) = inputs.values()
        return {"value": 2 * dep["value"], "pair": (1, 2)}

    @reg.register("total", "sum every dependency")
    def total(params, inputs):
        if log is not None:
            log.append("total")
        _maybe_fail("total", boom_at, interrupt_at)
        return {"value": sum(v["value"] for v in inputs.values())}

    return reg


def _maybe_fail(name, boom_at, interrupt_at):
    if boom_at == name:
        raise RuntimeError("synthetic step failure")
    if interrupt_at == name:
        raise KeyboardInterrupt


TINY = WorkflowPreset(
    name="tiny",
    description="seed -> double -> total",
    steps=(
        spec("seed", params={"value": 3}),
        spec("double", deps=("seed",)),
        spec("total", deps=("seed", "double")),
    ),
)


def run_tiny(store, log=None, overrides=None, **kwargs):
    registry = make_registry(log=log, **{
        k: kwargs.pop(k) for k in ("boom_at", "interrupt_at")
        if k in kwargs
    })
    return WorkflowRunner(
        store=store, registry=registry, **kwargs
    ).run(TINY, overrides=overrides)


# ----------------------------------------------------------------------
# Registry and preset semantics
# ----------------------------------------------------------------------
class TestStepRegistry:
    def test_duplicate_registration_raises(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("seed", "again")(lambda p, i: {})

    def test_unknown_step_error_lists_alternatives(self):
        with pytest.raises(UnknownStepError) as err:
            make_registry().get("nope")
        assert "double" in str(err.value)

    def test_defaults_merge_under_explicit_params(self):
        step = make_registry().get("seed")
        assert step.resolve_params({}) == {"value": 1}
        assert step.resolve_params({"value": 9}) == {"value": 9}

    def test_production_catalog_has_the_issue_steps(self):
        assert STEPS.names() == (
            "collect-telemetry", "compile-routes", "generate-mesh",
            "inject-chaos", "report", "run-campaign",
            "sample-timeline", "serve",
        )


class TestPresets:
    def test_duplicate_instance_name_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowPreset("bad", "", steps=(spec("seed"), spec("seed")))

    def test_forward_dependency_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowPreset(
                "bad", "",
                steps=(spec("double", deps=("seed",)), spec("seed")),
            )

    def test_unknown_preset_error_lists_catalog(self):
        with pytest.raises(UnknownPresetError) as err:
            preset_by_name("nope")
        assert "chaos-campaign" in str(err.value)

    def test_catalog_presets_validate_against_production_steps(self):
        for preset in PRESETS.values():
            preset.validate(STEPS)

    def test_digest_is_stable_and_override_sensitive(self):
        base = preset_digest(TINY)
        assert base == preset_digest(TINY)
        assert base != preset_digest(
            TINY, overrides={"seed": {"value": 4}}
        )

    def test_validate_rejects_steps_missing_from_registry(self):
        registry = StepRegistry()
        with pytest.raises(UnknownStepError):
            TINY.validate(registry)


# ----------------------------------------------------------------------
# Runner: caching, force, budget, interrupt, failure, normalization
# ----------------------------------------------------------------------
class TestRunner:
    def test_executes_in_declaration_order_and_threads_inputs(self):
        log = []
        outcome = run_tiny(ArtifactStore(), log=log)
        assert log == ["seed", "double", "total"]
        assert outcome.completed
        # total = seed(3) + double(6)
        assert outcome.steps[-1].output == {"value": 9}

    def test_second_run_is_all_cache_hits(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        first = run_tiny(store, log=[])
        log = []
        second = run_tiny(ArtifactStore(root=str(tmp_path)), log=log)
        assert log == []
        assert second.executed_steps == 0
        assert second.cached_steps == 3
        assert first.report_json() == second.report_json()

    def test_force_recomputes_every_step(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        run_tiny(store)
        log = []
        forced = run_tiny(store, log=log, force=True)
        assert log == ["seed", "double", "total"]
        assert forced.cached_steps == 0

    def test_digest_excluded_params_share_a_checkpoint(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        registry = make_registry()
        preset = WorkflowPreset(
            "px", "", steps=(
                spec("seed"),
                spec("double", params={"jobs": 8}, deps=("seed",)),
            ),
        )
        WorkflowRunner(store=store, registry=registry).run(preset)
        retopo = WorkflowPreset(
            "px", "", steps=(
                spec("seed"),
                spec("double", params={"jobs": 1}, deps=("seed",)),
            ),
        )
        again = WorkflowRunner(store=store, registry=registry).run(retopo)
        assert again.executed_steps == 0

    def test_version_bump_invalidates_checkpoints(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        preset = WorkflowPreset("pv", "", steps=(spec("seed"),))

        def registry_v(version):
            reg = StepRegistry()

            @reg.register("seed", "emit", version=version)
            def seed(params, inputs):
                return {"value": version}

            return reg

        WorkflowRunner(store=store, registry=registry_v(1)).run(preset)
        bumped = WorkflowRunner(
            store=store, registry=registry_v(2)
        ).run(preset)
        assert bumped.executed_steps == 1
        assert bumped.steps[0].output == {"value": 2}

    def test_dependency_change_ripples_to_dependents(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        registry = make_registry()
        runner = WorkflowRunner(store=store, registry=registry)
        runner.run(TINY)
        changed = runner.run(TINY, overrides={"seed": {"value": 5}})
        # Every step reran: seed's params changed, and its digest sits
        # inside both dependents' addresses.
        assert changed.executed_steps == 3
        assert changed.steps[-1].output == {"value": 15}

    def test_budget_zero_pauses_before_any_step(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        paused = run_tiny(store, log=[], budget_seconds=0.0)
        assert paused.status == "paused"
        assert paused.pending == ("seed", "double", "total")
        assert paused.report is None
        resumed = run_tiny(ArtifactStore(root=str(tmp_path)))
        assert resumed.completed

    def test_keyboard_interrupt_checkpoints_predecessors(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        with pytest.raises(WorkflowInterrupted) as err:
            run_tiny(store, interrupt_at="double")
        assert err.value.step == "double"
        assert err.value.completed == ("seed",)
        # The typed error sits under the repo-wide taxonomy.
        from repro.wormhole.deadlock import SimulationError
        assert isinstance(err.value, SimulationError)
        log = []
        resumed = run_tiny(ArtifactStore(root=str(tmp_path)), log=log)
        assert resumed.completed
        assert log == ["double", "total"]  # seed replayed from disk

    def test_step_exception_becomes_typed_failure(self):
        with pytest.raises(StepFailedError) as err:
            run_tiny(ArtifactStore(), boom_at="double")
        assert err.value.step == "double"
        assert isinstance(err.value.__cause__, RuntimeError)

    def test_non_dict_output_is_a_step_failure(self):
        reg = StepRegistry()

        @reg.register("bad", "returns a list")
        def bad(params, inputs):
            return [1, 2]

        preset = WorkflowPreset("pb", "", steps=(spec("bad"),))
        with pytest.raises(StepFailedError):
            WorkflowRunner(store=ArtifactStore(), registry=reg).run(preset)

    def test_fresh_output_is_normalized_like_a_replay(self, tmp_path):
        # ``double`` returns a tuple; JSON normalization must turn it
        # into a list on the *first* run, or a straight run and a
        # resumed run would differ structurally.
        store = ArtifactStore(root=str(tmp_path))
        first = run_tiny(store)
        cached = run_tiny(ArtifactStore(root=str(tmp_path)))
        assert first.steps[1].output["pair"] == [1, 2]
        assert first.steps[1].output == cached.steps[1].output

    def test_unknown_override_target_is_typed(self):
        with pytest.raises(WorkflowError):
            run_tiny(ArtifactStore(), overrides={"nope": {"x": 1}})

    def test_steps_record_telemetry(self):
        reg = TelemetryRegistry()
        with use_registry(reg):
            run_tiny(ArtifactStore())
        counters = reg.snapshot(redact_timings=True)["counters"]
        assert counters[
            'workflow_steps_total{source="run",step="seed"}'
        ] == 1
        assert counters[
            'workflow_steps_total{source="run",step="total"}'
        ] == 1


# ----------------------------------------------------------------------
# Kill-and-resume acceptance: SIGKILL at a step boundary, resume,
# byte-identical report with zero recomputation of pre-kill steps.
# ----------------------------------------------------------------------
def run_cli(args, *, env_extra=None, cwd=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=cwd, capture_output=True, text=True, timeout=600,
    )


SMALL_SLO = [
    "--set", "run-campaign.trials=2",
    "--set", "sample-timeline.horizon=1.0",
    "--set", "run-campaign.horizon=1.0",
]


class TestKillAndResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """The ISSUE acceptance criterion, end to end: a process-
        executor workflow SIGKILLed mid-campaign resumes with every
        completed step a cache hit and an identical final report."""
        ckpt = tmp_path / "ckpt"
        straight_store = tmp_path / "straight"
        killed = run_cli(
            ["workflow", "run", "reliability-slo",
             "--store", str(ckpt), "--out", str(tmp_path / "no.json"),
             "--set", "run-campaign.executor=\"process\"",
             "--set", "run-campaign.jobs=2", *SMALL_SLO],
            env_extra={"REPRO_WORKFLOW_KILL_AFTER": "run-campaign"},
        )
        assert killed.returncode in (-signal.SIGKILL, 137), killed.stderr
        assert not (tmp_path / "no.json").exists()

        resumed = run_cli(
            ["workflow", "resume", "reliability-slo",
             "--store", str(ckpt), "--json",
             "--out", str(tmp_path / "resumed.json"),
             "--set", "run-campaign.executor=\"process\"",
             "--set", "run-campaign.jobs=2", *SMALL_SLO],
        )
        assert resumed.returncode == 0, resumed.stderr
        outcome = json.loads(resumed.stdout)
        # Both pre-kill steps replay from the store; only the report
        # step (never reached) computes.
        assert outcome["cached_steps"] == 2
        assert outcome["executed_steps"] == 1
        sources = {s["name"]: s["source"] for s in outcome["steps"]}
        assert sources["sample-timeline"] == "cache"
        assert sources["run-campaign"] == "cache"

        straight = run_cli(
            ["workflow", "run", "reliability-slo",
             "--store", str(straight_store),
             "--out", str(tmp_path / "straight.json"),
             "--set", "run-campaign.executor=\"process\"",
             "--set", "run-campaign.jobs=2", *SMALL_SLO],
        )
        assert straight.returncode == 0, straight.stderr
        resumed_bytes = (tmp_path / "resumed.json").read_bytes()
        straight_bytes = (tmp_path / "straight.json").read_bytes()
        assert resumed_bytes == straight_bytes

    def test_interrupt_exit_code_is_distinct(self, tmp_path):
        """A step that raises KeyboardInterrupt surfaces as exit 130
        (not a raw traceback), with predecessors checkpointed."""
        script = (
            "import sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.cli import main\n"
            "from repro.workflow import steps as S\n"
            "orig = S.STEPS.get('run-campaign').fn\n"
            "object.__setattr__(S.STEPS.get('run-campaign'), 'fn',\n"
            "    lambda p, i: (_ for _ in ()).throw(KeyboardInterrupt))\n"
            "sys.exit(main(['workflow', 'run', 'reliability-slo',\n"
            "    '--store', %r,\n"
            "    '--set', 'sample-timeline.horizon=1.0',\n"
            "    '--set', 'run-campaign.horizon=1.0',\n"
            "    '--set', 'run-campaign.trials=2']))\n"
        ) % (
            os.path.join(
                os.path.dirname(os.path.dirname(__file__)), "src"
            ),
            str(tmp_path / "ckpt"),
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 130, (proc.stdout, proc.stderr)
        assert "resume with" in proc.stdout
        assert "Traceback" not in proc.stderr
        # The predecessor really is checkpointed for the resume.
        store = ArtifactStore(root=str(tmp_path / "ckpt"))
        assert len(store.digests()) == 1

    def test_budget_pause_exit_code(self, tmp_path):
        paused = run_cli(
            ["workflow", "run", "reliability-slo",
             "--store", str(tmp_path / "ckpt"),
             "--budget-seconds", "0", *SMALL_SLO],
        )
        assert paused.returncode == 3, paused.stderr
        assert "paused" in paused.stdout
