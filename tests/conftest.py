"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.mesh import FaultSet, Mesh
from repro.routing import Ordering, ascending, repeated, xy, xyz


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def mesh12() -> Mesh:
    return Mesh((12, 12))


@pytest.fixture
def paper_faults(mesh12: Mesh) -> FaultSet:
    """The Section 5 worked example fault set."""
    return FaultSet(mesh12, [(9, 1), (11, 6), (10, 10)])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def small_meshes(draw, max_d: int = 3, min_width: int = 2, max_width: int = 7):
    """A small mesh suitable for brute-force cross-checking."""
    d = draw(st.integers(1, max_d))
    widths = tuple(
        draw(st.integers(min_width, max_width), label=f"width[{j}]")
        for j in range(d)
    )
    return Mesh(widths)


@st.composite
def faulty_meshes(
    draw,
    max_d: int = 3,
    max_width: int = 7,
    max_node_faults: int = 6,
    max_link_faults: int = 4,
    allow_link_faults: bool = True,
):
    """A small mesh plus a random fault set (nodes and directed links)."""
    mesh = draw(small_meshes(max_d=max_d, max_width=max_width))
    all_nodes = list(mesh.nodes())
    nf = draw(st.integers(0, min(max_node_faults, len(all_nodes) - 2)))
    node_idx = draw(
        st.lists(
            st.integers(0, len(all_nodes) - 1),
            min_size=nf,
            max_size=nf,
            unique=True,
        )
    )
    node_faults = [all_nodes[i] for i in node_idx]
    link_faults: List[Tuple] = []
    if allow_link_faults:
        all_links = list(mesh.links())
        lf = draw(st.integers(0, min(max_link_faults, len(all_links))))
        link_idx = draw(
            st.lists(
                st.integers(0, len(all_links) - 1),
                min_size=lf,
                max_size=lf,
                unique=True,
            )
        )
        link_faults = [all_links[i] for i in link_idx]
    return FaultSet(mesh, node_faults, link_faults)


@st.composite
def orderings_for(draw, d: int):
    """A random permutation ordering of d dimensions."""
    perm = draw(st.permutations(list(range(d))))
    return Ordering(perm)


@st.composite
def faulty_meshes_with_ordering(draw, **kwargs):
    faults = draw(faulty_meshes(**kwargs))
    pi = draw(orderings_for(faults.mesh.d))
    return faults, pi


def good_node_pairs(faults: FaultSet, count: int, seed: int = 0):
    """Deterministic sample of good (v, w) pairs for a faulty mesh."""
    rng = np.random.default_rng(seed)
    good = faults.good_nodes()
    if len(good) < 2:
        return []
    out = []
    for _ in range(count):
        i = int(rng.integers(len(good)))
        j = int(rng.integers(len(good)))
        out.append((good[i], good[j]))
    return out
