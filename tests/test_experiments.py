"""Tests for the experiment harness and figure reproductions
(repro.experiments) — run with tiny trial counts."""

import os

import numpy as np
import pytest

from repro.core import partition_size_bound
from repro.experiments import (
    SweepResult,
    TrialSeries,
    default_trials,
    fig17,
    fig19,
    fig25,
    lamb_trials,
    render_sweep,
    section3_one_vs_two_rounds,
    sweep_to_markdown,
)
from repro.experiments.figures import PERCENTS, _faults_for_percent
from repro.mesh import Mesh


class TestHarness:
    def test_trial_series(self):
        s = TrialSeries(x=1.0)
        s.add(lambs=3, seconds=0.1)
        s.add(lambs=5, seconds=0.2)
        assert s.trials == 2
        assert s.avg("lambs") == 4.0
        assert s.max("lambs") == 5.0
        assert s.min("lambs") == 3.0

    def test_default_trials_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert default_trials(7) == 7
        monkeypatch.setenv("REPRO_TRIALS", "3")
        assert default_trials(7) == 3
        monkeypatch.setenv("REPRO_TRIALS", "0")
        with pytest.raises(ValueError):
            default_trials(7)

    def test_lamb_trials_deterministic(self):
        mesh = Mesh((10, 10))
        a = lamb_trials(mesh, 4, trials=3, seed=5, tag=1)
        b = lamb_trials(mesh, 4, trials=3, seed=5, tag=1)
        assert a.values["lambs"] == b.values["lambs"]
        c = lamb_trials(mesh, 4, trials=3, seed=6, tag=1)
        # Different seed: measurements recorded independently (may
        # coincide by chance for tiny fault counts, but fields exist).
        assert set(c.values) == set(a.values)

    def test_lamb_trials_records_all_keys(self):
        mesh = Mesh((8, 8))
        s = lamb_trials(mesh, 3, trials=2, seed=0)
        assert set(s.values) == {"lambs", "num_ses", "num_des", "seconds"}
        assert s.trials == 2

    def test_extra_measurements(self):
        mesh = Mesh((8, 8))
        s = lamb_trials(
            mesh, 3, trials=1, seed=0,
            extra=lambda r: {"damage": r.additional_damage()},
        )
        assert "damage" in s.values


class TestFigures:
    def test_fault_percent_rounding(self):
        # 3% of 32768 = 983.04 -> 983, the paper's count.
        assert _faults_for_percent(Mesh.square(3, 32), 3.0) == 983
        assert _faults_for_percent(Mesh.square(2, 32), 3.0) == 31

    def test_fig17_shape(self):
        r = fig17(trials=2, seed=1)
        assert r.figure == "fig17"
        assert r.xs == list(PERCENTS)
        lambs = r.column("lambs")
        assert len(lambs) == 6
        assert all(v >= 0 for v in lambs)
        assert r.column("lambs", "max") >= r.column("lambs", "avg")

    def test_fig19_damage_derivation(self):
        r = fig19(trials=2, seed=1)
        assert {"damage_2d", "damage_3d"} <= set(r.series[0].values)
        # The headline qualitative claim: 3D damage << 2D damage at 3%.
        last = r.series[-1]
        assert last.avg("damage_3d") < last.avg("damage_2d")

    def test_fig25_bound_dominates(self):
        r = fig25(trials=2, seed=1)
        for s in r.series:
            f = _faults_for_percent(Mesh.square(3, 32), s.x)
            bound = partition_size_bound((32, 32, 32), f)
            assert s.values["bound"] == [bound]
            assert s.max("num_ses") <= bound

    def test_section3(self):
        r = section3_one_vs_two_rounds(trials=1, seed=0, n=12, f=12)
        s = r.series[0]
        assert s.avg("lambs_k1") >= s.avg("lambs_k2")
        assert r.meta["theorem31_bound"] > 0


class TestReport:
    def _result(self):
        r = SweepResult(figure="figX", description="demo", x_label="x")
        s = TrialSeries(x=1.0)
        s.add(lambs=2)
        s.add(lambs=4)
        r.series.append(s)
        return r

    def test_render_sweep(self):
        text = render_sweep(self._result())
        assert "figX" in text
        assert "avg(lambs)" in text and "max(lambs)" in text
        assert "3" in text and "4" in text

    def test_render_single_agg(self):
        text = render_sweep(self._result(), aggs=("avg",))
        assert "lambs" in text and "avg(" not in text

    def test_markdown(self):
        md = sweep_to_markdown(self._result())
        lines = md.splitlines()
        assert lines[0].startswith("| x |")
        assert lines[1].startswith("|---")
        assert "| 1 | 3 | 4 |" in md

    def test_missing_key_renders_dash(self):
        r = self._result()
        s2 = TrialSeries(x=2.0)
        s2.add(other=1)
        r.series.append(s2)
        text = render_sweep(r)
        assert "-" in text


class TestConfidenceIntervals:
    def test_std_and_ci(self):
        s = TrialSeries(x=0.0)
        for v in (2.0, 4.0, 6.0, 8.0):
            s.add(lambs=v)
        assert s.std("lambs") == pytest.approx(np.std([2, 4, 6, 8], ddof=1))
        ci = s.ci95("lambs")
        assert ci > 0
        # t(0.975, 3) * sem = 3.1824 * (2.582/2)
        assert ci == pytest.approx(3.1824 * np.std([2, 4, 6, 8], ddof=1) / 2, rel=1e-3)

    def test_single_trial_ci_zero(self):
        s = TrialSeries(x=0.0)
        s.add(lambs=1.0)
        assert s.ci95("lambs") == 0.0
        assert s.std("lambs") == 0.0

    def test_render_with_ci(self):
        s = TrialSeries(x=1.0)
        s.add(lambs=2)
        s.add(lambs=4)
        r = SweepResult(figure="f", description="d", x_label="x", series=[s])
        text = render_sweep(r, aggs=("avg", "ci95"))
        assert "ci95(lambs)" in text
