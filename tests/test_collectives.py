"""Tests for collective schedules and their execution
(repro.collectives)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveStats,
    Schedule,
    Transfer,
    binomial_broadcast,
    binomial_gather,
    linear_alltoone,
    recursive_doubling_allgather,
    ring_allgather,
    run_collective,
)
from repro.core import find_lamb_set
from repro.mesh import FaultSet, Mesh
from repro.routing import repeated, xy


class TestSchedule:
    def test_add_phase_validation(self):
        s = Schedule(4)
        with pytest.raises(ValueError):
            s.add_phase([Transfer(0, 4)])
        with pytest.raises(ValueError):
            s.add_phase([Transfer(-1, 0)])
        with pytest.raises(ValueError):
            s.add_phase([Transfer(2, 2)])

    def test_counters(self):
        s = Schedule(4)
        s.add_phase([Transfer(0, 1), Transfer(2, 3)])
        s.add_phase([Transfer(1, 2)])
        assert s.num_phases == 2
        assert s.total_transfers == 3

    def test_propagate_barrier_semantics(self):
        """Transfers within a phase read pre-phase state: a chain
        0->1, 1->2 in ONE phase moves 0's data only to 1."""
        s = Schedule(3)
        s.add_phase([Transfer(0, 1), Transfer(1, 2)])
        state = s.propagate({0: {0}, 1: {1}, 2: {2}})
        assert state[1] == {0, 1}
        assert state[2] == {1, 2}  # not {0, 1, 2}


class TestAlgorithmsDataflow:
    @given(st.integers(1, 33), st.integers(0, 32))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_reaches_everyone(self, p, root):
        root = root % p
        sched = binomial_broadcast(p, root)
        want = math.ceil(math.log2(p)) if p > 1 else 0
        assert sched.num_phases == want
        state = sched.propagate({r: {r} for r in range(p)})
        for r in range(p):
            assert root in state[r], (p, root, r)

    @given(st.integers(1, 33), st.integers(0, 32))
    @settings(max_examples=30, deadline=None)
    def test_gather_collects_everything(self, p, root):
        root = root % p
        sched = binomial_gather(p, root)
        state = sched.propagate({r: {r} for r in range(p)})
        assert state[root] == set(range(p))

    @given(st.integers(1, 33))
    @settings(max_examples=30, deadline=None)
    def test_allgather_recursive_doubling(self, p):
        sched = recursive_doubling_allgather(p)
        state = sched.propagate({r: {r} for r in range(p)})
        for r in range(p):
            assert state[r] == set(range(p)), (p, r)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_allgather_ring(self, p):
        sched = ring_allgather(p)
        assert sched.num_phases == max(0, p - 1)
        state = sched.propagate({r: {r} for r in range(p)})
        for r in range(p):
            assert state[r] == set(range(p))

    def test_alltoone(self):
        sched = linear_alltoone(7, root=3)
        state = sched.propagate({r: {r} for r in range(7)})
        assert state[3] == set(range(7))
        assert sched.num_phases == 1

    def test_phase_count_scaling(self):
        """Binomial tree is logarithmic, ring is linear."""
        assert binomial_broadcast(64).num_phases == 6
        assert ring_allgather(64).num_phases == 63

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_broadcast(0)
        with pytest.raises(ValueError):
            binomial_broadcast(4, root=4)


class TestRunner:
    @pytest.fixture
    def machine(self):
        mesh = Mesh((8, 8))
        # The diagonal corner cut guarantees a nonempty lamb set (the
        # corner pocket cannot 2-round-reach the rest of the mesh).
        faults = FaultSet(mesh, [(2, 0), (1, 1), (0, 2), (5, 5)])
        result = find_lamb_set(faults, repeated(xy(), 2))
        assert result.lambs
        return result

    def test_broadcast_runs(self, machine):
        survivors = machine.survivors()[:16]
        sched = binomial_broadcast(len(survivors))
        stats = run_collective(machine, sched, survivors)
        assert stats.makespan_cycles > 0
        assert stats.num_phases == sched.num_phases
        assert stats.total_messages == sched.total_transfers

    def test_binomial_beats_naive_gather(self, machine):
        """The hotspot baseline serializes at the root; the binomial
        tree parallelizes: fewer cycles for the same payload."""
        survivors = machine.survivors()[:24]
        p = len(survivors)
        tree = run_collective(machine, binomial_gather(p), survivors)
        naive = run_collective(machine, linear_alltoone(p), survivors)
        assert tree.total_messages >= naive.total_messages
        assert tree.makespan_cycles < naive.makespan_cycles * 2  # sanity
        # The root's ejection serializes the naive gather.
        assert naive.makespan_cycles >= p - 1

    def test_rejects_lamb_participant(self, machine):
        if not machine.lambs:
            pytest.skip("instance has no lambs")
        lamb = next(iter(machine.lambs))
        participants = machine.survivors()[:3] + [lamb]
        sched = binomial_broadcast(4)
        with pytest.raises(ValueError):
            run_collective(machine, sched, participants)

    def test_rejects_duplicate_participant(self, machine):
        s = machine.survivors()[:3]
        with pytest.raises(ValueError):
            run_collective(machine, binomial_broadcast(4), s + [s[0]])

    def test_rank_count_mismatch(self, machine):
        with pytest.raises(ValueError):
            run_collective(
                machine, binomial_broadcast(4), machine.survivors()[:5]
            )

    def test_default_participants_all_survivors(self):
        mesh = Mesh((4, 4))
        result = find_lamb_set(FaultSet(mesh, [(1, 1)]), repeated(xy(), 2))
        p = len(result.survivors())
        stats = run_collective(result, binomial_broadcast(p))
        assert stats.makespan_cycles > 0


class TestSchedulesFuzz:
    """Property fuzz over rank counts for all algorithms."""

    @given(st.integers(1, 50))
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_dataflow(self, p):
        init = {r: {r} for r in range(p)}
        bcast = binomial_broadcast(p).propagate(init)
        assert all(0 in bcast[r] for r in range(p))
        gathered = binomial_gather(p, root=p - 1).propagate(init)
        assert gathered[p - 1] == set(range(p))
        ag = recursive_doubling_allgather(p).propagate(init)
        assert all(ag[r] == set(range(p)) for r in range(p))

    @given(st.integers(2, 40))
    @settings(max_examples=15, deadline=None)
    def test_phase_counts(self, p):
        assert binomial_broadcast(p).num_phases == math.ceil(math.log2(p))
        rd = recursive_doubling_allgather(p)
        m = 1
        while m * 2 <= p:
            m *= 2
        extra = 2 if p != m else 0
        assert rd.num_phases == int(math.log2(m)) + extra
