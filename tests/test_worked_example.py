"""Exact reproduction of the paper's published artifacts:
Tables 1-2 and the Section 5 lamb set."""

import numpy as np

from repro.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_matrix,
    worked_example,
)


class TestTables:
    def test_table1_exact(self):
        we = worked_example()
        assert np.array_equal(we.R, PAPER_TABLE1)

    def test_table2_exact(self):
        we = worked_example()
        assert np.array_equal(we.R2, PAPER_TABLE2)

    def test_table2_is_RIR_of_table1(self):
        """Lemma 5.1: R^(2) = R I R with the intersection matrix."""
        we = worked_example()
        I = np.zeros((7, 9), dtype=bool)
        for j, D in enumerate(we.des):
            for i, S in enumerate(we.ses):
                I[j, i] = D.intersects(S)
        R2 = ((we.R @ I @ we.R) > 0)
        assert np.array_equal(R2, PAPER_TABLE2)

    def test_footnote3_R_equals_I_transpose(self):
        """Footnote 3: for this 2D SEC/DEC example, R = I^T."""
        we = worked_example()
        I = np.zeros((7, 9), dtype=bool)
        for j, D in enumerate(we.des):
            for i, S in enumerate(we.ses):
                I[j, i] = D.intersects(S)
        assert np.array_equal(we.R, I.T)

    def test_lamb_set_and_weight(self):
        we = worked_example()
        assert sorted(we.result.lambs) == [(10, 11), (11, 10)]
        assert we.result.cover_weight == 2.0
        assert we.matches_paper()

    def test_zero_entries_match_figures_7_and_8(self):
        """Fig. 7: D2, D6 unreachable from S8; Fig. 8: D5 from S3."""
        we = worked_example()
        zeros = {(i + 1, j + 1) for i, j in zip(*np.nonzero(~we.R2))}
        assert zeros == {(3, 5), (8, 2), (8, 6)}

    def test_set_sizes_match_figures(self):
        we = worked_example()
        # |S8| = 1, |D5| = 1 (the two lamb nodes); |S4| = 48.
        assert we.ses[7].size == 1
        assert we.des[4].size == 1
        assert we.ses[3].size == 48

    def test_render_matrix(self):
        we = worked_example()
        text = render_matrix(we.R)
        assert "S1" in text and "D7" in text
        rows = text.strip().splitlines()
        assert len(rows) == 10  # header + 9 rows
