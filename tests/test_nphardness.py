"""Tests for the Theorem 9.1 reduction (repro.complexity.nphardness)
and the Lamb1 adversarial family (Section 6.3.1)."""

import numpy as np
import pytest

from repro.complexity import (
    build_lamb_instance,
    cover_to_lamb_set,
    lamb1_adversarial_instance,
    recover_vertex_cover,
)
from repro.core import find_lamb_set, full_reach_matrix, is_lamb_set
from repro.graphs import exact_min_vertex_cover, is_vertex_cover
from repro.routing import repeated, xy, xyz


@pytest.fixture(scope="module")
def k3_instance():
    """The triangle K3 (VC optimum 2) as a (3,2)-lamb instance."""
    return build_lamb_instance(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="module")
def k3_reach(k3_instance):
    return full_reach_matrix(k3_instance.faults, repeated(xyz(), 2))


class TestConstruction:
    def test_dimensions(self, k3_instance):
        inst = k3_instance
        assert inst.num_vertices == 4  # 3 + helper
        assert inst.n >= 2 * inst.num_vertices
        # K3 plus helper: non-edges are exactly the 3 helper pairs.
        assert set(inst.nonedge_levels) == {(0, 1), (0, 2), (0, 3)}

    def test_nonedge_planes_flanked_by_column_planes(self, k3_instance):
        inst = k3_instance
        for level in inst.nonedge_levels.values():
            assert level - 1 in inst.column_levels
            assert level + 1 in inst.column_levels

    def test_columns_are_good(self, k3_instance):
        inst = k3_instance
        for i in range(inst.num_vertices):
            for v in inst.column_nodes(i):
                assert not inst.faults.node_is_faulty(v)

    def test_every_column_has_an_outlet(self, k3_instance):
        # The helper vertex guarantees >= 1 outlet per column.
        for i in range(k3_instance.num_vertices):
            assert k3_instance.outlet_levels(i)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            build_lamb_instance(3, [(0, 3)])
        with pytest.raises(ValueError):
            build_lamb_instance(3, [(1, 1)])

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            build_lamb_instance(3, [(0, 1)], n=4)


class TestReachabilityProperties:
    """The three properties in the proof of Theorem 9.1."""

    def test_property1_nonedges_2reach(self, k3_instance, k3_reach):
        inst, R = k3_instance, k3_reach
        mesh = inst.faults.mesh
        for (i, j) in inst.nonedge_levels:
            for v in inst.column_nodes(i):
                for w in inst.column_nodes(j):
                    assert R[mesh.index_of(v), mesh.index_of(w)]
                    assert R[mesh.index_of(w), mesh.index_of(v)]

    def test_property2_edges_blocked(self, k3_instance, k3_reach):
        inst, R = k3_instance, k3_reach
        mesh = inst.faults.mesh
        edges_internal = {(u + 1, v + 1) for (u, v) in inst.edges}
        for (i, j) in edges_internal:
            oi, oj = inst.outlet_levels(i), inst.outlet_levels(j)
            for v in inst.non_outlet_nodes(i):
                for w in inst.non_outlet_nodes(j):
                    assert not R[mesh.index_of(v), mesh.index_of(w)], (v, w)

    def test_property3_columns_and_external(self, k3_instance, k3_reach):
        inst, R = k3_instance, k3_reach
        mesh = inst.faults.mesh
        rng = np.random.default_rng(0)
        externals = [
            v for v in mesh.nodes() if not inst.is_internal(v)
        ]
        sample = [externals[int(k)] for k in rng.integers(0, len(externals), 8)]
        for i in range(inst.num_vertices):
            group = inst.column_nodes(i)[:3] + sample
            for v in group:
                for w in group:
                    assert R[mesh.index_of(v), mesh.index_of(w)], (i, v, w)


class TestCoverTransfer:
    def test_lamb_yields_vertex_cover(self, k3_instance):
        inst = k3_instance
        result = find_lamb_set(inst.faults, repeated(xyz(), 2))
        cover = recover_vertex_cover(inst, result.lambs)
        assert is_vertex_cover(inst.edges, cover)

    def test_optimal_cover_yields_lamb_set(self, k3_instance):
        inst = k3_instance
        opt = exact_min_vertex_cover(3, inst.edges)
        lambs = cover_to_lamb_set(inst, opt)
        assert is_lamb_set(inst.faults, repeated(xyz(), 2), lambs)

    def test_non_cover_does_not_yield_lamb_set(self, k3_instance):
        inst = k3_instance
        # {0} misses edge (1, 2): the corresponding Λ must NOT work.
        lambs = cover_to_lamb_set(inst, {0})
        assert not is_lamb_set(inst.faults, repeated(xyz(), 2), lambs)

    def test_path_graph_instance(self):
        """P3 (0-1-2): optimum cover {1}."""
        inst = build_lamb_instance(3, [(0, 1), (1, 2)])
        lambs = cover_to_lamb_set(inst, {1})
        assert is_lamb_set(inst.faults, repeated(xyz(), 2), lambs)
        result = find_lamb_set(inst.faults, repeated(xyz(), 2))
        cover = recover_vertex_cover(inst, result.lambs)
        assert is_vertex_cover(inst.edges, cover)


class TestAdversarialFamily:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_lamb1_ratio(self, m):
        """Section 6.3.1: Lamb1 returns (4m-1)n lambs where 2mn is
        optimal — the 2 - 1/(2m) gap."""
        inst = lamb1_adversarial_instance(m)
        orderings = repeated(xy(), 2)
        result = find_lamb_set(inst.faults, orderings)
        assert result.size == inst.lamb1_size
        assert is_lamb_set(inst.faults, orderings, result.lambs)
        assert inst.ratio == pytest.approx(2 - 1 / (2 * m))

    def test_optimal_is_two_outer_components(self):
        inst = lamb1_adversarial_instance(1)
        n = 5
        orderings = repeated(xy(), 2)
        # The two outer components form a valid (and optimal) lamb set.
        outer = [(x, y) for x in range(n) for y in range(n) if y < 1 or y > 3]
        assert is_lamb_set(inst.faults, orderings, outer)
        assert len(outer) == inst.optimal_lamb_size

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            lamb1_adversarial_instance(0)
