"""Tests for traffic generators (repro.wormhole.traffic) and the
deadlock detector primitives (repro.wormhole.deadlock)."""

import numpy as np
import pytest

from repro.mesh import FaultSet, Mesh
from repro.wormhole import (
    Hop,
    Message,
    VirtualNetwork,
    build_wait_graph,
    find_deadlock_cycle,
    hotspot_traffic,
    permutation_traffic,
    transpose_traffic,
    uniform_random_traffic,
)


@pytest.fixture
def pool():
    return [(x, y) for x in range(4) for y in range(4)]


class TestUniform:
    def test_no_self_messages(self, pool, rng):
        for inj in uniform_random_traffic(pool, 200, rng):
            assert inj.source != inj.dest
            assert inj.source in pool and inj.dest in pool

    def test_inject_window(self, pool, rng):
        injections = uniform_random_traffic(pool, 100, rng, inject_window=10)
        cycles = {i.inject_cycle for i in injections}
        assert all(0 <= c <= 10 for c in cycles)
        assert len(cycles) > 1

    def test_needs_two_endpoints(self, rng):
        with pytest.raises(ValueError):
            uniform_random_traffic([(0, 0)], 5, rng)


class TestPermutation:
    def test_is_derangement(self, pool, rng):
        injections = permutation_traffic(pool, rng)
        assert len(injections) == len(pool)
        sources = [i.source for i in injections]
        dests = [i.dest for i in injections]
        assert sorted(sources) == sorted(pool)
        assert sorted(dests) == sorted(pool)
        assert all(s != d for s, d in zip(sources, dests))


class TestHotspot:
    def test_hotspot_receives_fraction(self, pool, rng):
        injections = hotspot_traffic(
            pool, 300, rng, hotspot=(1, 1), hotspot_fraction=0.5
        )
        hot = sum(1 for i in injections if i.dest == (1, 1))
        assert hot >= 100  # ~50% +- noise
        assert all(i.source != i.dest for i in injections)

    def test_hotspot_must_be_endpoint(self, pool, rng):
        with pytest.raises(ValueError):
            hotspot_traffic(pool, 10, rng, hotspot=(9, 9))


class TestTranspose:
    def test_pairs(self, pool):
        m = Mesh((4, 4))
        injections = transpose_traffic(m, pool)
        for inj in injections:
            x, y = inj.source
            assert inj.dest == (y, x)
            assert x != y  # diagonal nodes excluded

    def test_respects_pool(self):
        m = Mesh((4, 4))
        pool = [(0, 1), (2, 3)]  # transposes missing from the pool
        assert transpose_traffic(m, pool) == []

    def test_requires_square_2d(self):
        with pytest.raises(ValueError):
            transpose_traffic(Mesh((4, 5)), [(0, 0), (1, 1)])


class TestDeadlockDetector:
    def _msg(self, mid, hops):
        return Message(mid, hops[0].src, hops[-1].dst, 2, hops, inject_cycle=0)

    def test_wait_graph_edges(self):
        mesh = Mesh((4, 4))
        net = VirtualNetwork(FaultSet(mesh), num_vcs=1)
        h1 = Hop((0, 0), (1, 0), 0)
        h2 = Hop((1, 0), (2, 0), 0)
        m1 = self._msg(1, [h1, h2])
        m2 = self._msg(2, [h2])
        # m1 holds h1 and wants h2; m2 holds h2.
        net.try_acquire(h1, 1)
        m1.flit_pos = [0, -1]
        net.try_acquire(h2, 2)
        graph = build_wait_graph([m1, m2], net)
        assert graph == {1: 2}

    def test_cycle_detection(self):
        assert find_deadlock_cycle({1: 2, 2: 3, 3: 1}) is not None
        assert sorted(find_deadlock_cycle({1: 2, 2: 1})) == [1, 2]
        assert find_deadlock_cycle({1: 2, 2: 3}) is None
        assert find_deadlock_cycle({}) is None

    def test_tail_into_cycle(self):
        cycle = find_deadlock_cycle({0: 1, 1: 2, 2: 1})
        assert sorted(cycle) == [1, 2]
