"""Tests for the reliability-campaign subsystem (repro.reliability).

Three layers: the stochastic processes (seeded determinism, interval
bookkeeping, the chaos-schedule bridge), the SLO math (Wilson bounds,
verdict logic), and the Monte Carlo campaign (bit-identical reports
across executors, engine accounting, CLI round trip).
"""

import json

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.reliability import (
    CampaignConfig,
    DeterministicRepair,
    ExponentialRepair,
    FaultTimeline,
    FaultTransition,
    PoissonProcess,
    SLOTarget,
    SLOVerdict,
    WeibullProcess,
    arrival_process,
    generate_timeline,
    repair_model,
    run_campaign,
    wilson_interval,
)


class TestProcesses:
    def test_poisson_mean(self):
        p = PoissonProcess(rate=4.0)
        assert p.mean_interarrival == pytest.approx(0.25)
        rng = np.random.default_rng(0)
        draws = [p.sample_interarrival(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(0.25, rel=0.1)

    def test_weibull_shape_one_matches_exponential_mean(self):
        w = WeibullProcess(shape=1.0, scale=2.0)
        assert w.mean_interarrival == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0.0)
        with pytest.raises(ValueError):
            WeibullProcess(shape=-1.0, scale=1.0)
        with pytest.raises(ValueError):
            WeibullProcess(shape=1.0, scale=0.0)
        with pytest.raises(ValueError):
            DeterministicRepair(mttr=-1.0)
        with pytest.raises(ValueError):
            ExponentialRepair(mttr=0.0)

    def test_factories(self):
        assert isinstance(arrival_process("poisson", rate=2.0),
                          PoissonProcess)
        assert isinstance(
            arrival_process("weibull", shape=1.5, scale=0.5),
            WeibullProcess,
        )
        assert isinstance(repair_model("deterministic", 1.0),
                          DeterministicRepair)
        assert isinstance(repair_model("exponential", 1.0),
                          ExponentialRepair)
        with pytest.raises(ValueError, match="unknown arrival"):
            arrival_process("uniform")
        with pytest.raises(ValueError, match="unknown repair"):
            repair_model("magic", 1.0)


class TestGenerateTimeline:
    def _timeline(self, seed=0, rate=2.0, mttr=0.4, horizon=3.0):
        mesh = Mesh.square(2, 6)
        return generate_timeline(
            mesh,
            PoissonProcess(rate=rate),
            DeterministicRepair(mttr=mttr),
            horizon,
            np.random.default_rng(seed),
        )

    def test_seeded_determinism(self):
        a = self._timeline(seed=42)
        b = self._timeline(seed=42)
        assert a.transitions == b.transitions
        assert a.interarrivals == b.interarrivals
        c = self._timeline(seed=43)
        assert c.transitions != a.transitions

    def test_transitions_sorted_within_horizon(self):
        tl = self._timeline()
        times = [tr.time for tr in tl]
        assert times == sorted(times)
        assert all(0.0 <= t <= tl.horizon for t in times)

    def test_repairs_follow_fails_with_mttr_gap(self):
        tl = self._timeline(mttr=0.4)
        fails = {tr.node: tr.time for tr in tl if tr.kind == "fail"}
        for tr in tl:
            if tr.kind == "repair":
                assert tr.time == pytest.approx(fails[tr.node] + 0.4)

    def test_permanent_faults_never_repair(self):
        mesh = Mesh.square(2, 6)
        tl = generate_timeline(
            mesh, PoissonProcess(rate=3.0),
            DeterministicRepair(float("inf")), 2.0,
            np.random.default_rng(1),
        )
        assert tl.num_repairs == 0
        assert tl.num_faults > 0

    def test_intervals_partition_horizon(self):
        tl = self._timeline()
        pieces = list(tl.intervals())
        assert pieces[0][0] == 0.0
        assert pieces[-1][1] == tl.horizon
        for (_, t1, _), (t2, _, _) in zip(pieces, pieces[1:]):
            assert t1 == t2
        assert sum(t1 - t0 for t0, t1, _ in pieces) == pytest.approx(
            tl.horizon
        )

    def test_intervals_down_sets_are_sorted_tuples(self):
        for _, _, down in self._timeline().intervals():
            assert list(down) == sorted(down)

    def test_avoid_nodes_never_fail(self):
        mesh = Mesh.square(2, 4)
        avoid = [(0, 0), (1, 1)]
        tl = generate_timeline(
            mesh, PoissonProcess(rate=5.0), DeterministicRepair(0.5),
            4.0, np.random.default_rng(3), avoid=avoid,
        )
        victims = {tr.node for tr in tl if tr.kind == "fail"}
        assert victims.isdisjoint({(0, 0), (1, 1)})

    def test_observed_mttf_mttr(self):
        tl = self._timeline(mttr=0.4)
        assert tl.observed_mttr == pytest.approx(0.4)
        assert tl.observed_mttf is not None and tl.observed_mttf > 0

    def test_bad_horizon(self):
        mesh = Mesh.square(2, 4)
        with pytest.raises(ValueError, match="horizon"):
            generate_timeline(
                mesh, PoissonProcess(1.0), DeterministicRepair(0.1),
                0.0, np.random.default_rng(0),
            )


class TestFaultTimeline:
    def test_transition_validation(self):
        with pytest.raises(ValueError):
            FaultTransition(-1.0, (0, 0), "fail")
        with pytest.raises(ValueError):
            FaultTransition(1.0, (0, 0), "explode")

    def test_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultTimeline([FaultTransition(5.0, (0, 0), "fail")], 2.0)

    def test_repair_sorts_before_fail_at_equal_time(self):
        tl = FaultTimeline(
            [
                FaultTransition(1.0, (0, 0), "fail"),
                FaultTransition(1.0, (1, 1), "repair"),
            ],
            2.0,
        )
        assert [tr.kind for tr in tl] == ["repair", "fail"]

    def test_to_fault_schedule_drops_repairs_and_offsets(self):
        tl = FaultTimeline(
            [
                FaultTransition(0.1, (0, 0), "fail"),
                FaultTransition(0.5, (0, 0), "repair"),
                FaultTransition(1.0, (2, 3), "fail"),
            ],
            2.0,
        )
        sched = tl.to_fault_schedule(cycles_per_unit=100, start_cycle=20)
        assert len(sched) == 2
        assert sched[0].cycle == 30 and sched[0].node_faults == ((0, 0),)
        assert sched[1].cycle == 120 and sched[1].node_faults == ((2, 3),)

    def test_to_fault_schedule_validates_scale(self):
        tl = FaultTimeline([], 1.0)
        with pytest.raises(ValueError, match="cycles_per_unit"):
            tl.to_fault_schedule(cycles_per_unit=0)


class TestWilson:
    def test_vacuous_with_no_data(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_known_value(self):
        lo, hi = wilson_interval(9, 10)
        # Textbook Wilson bounds for 9/10 at z=1.96.
        assert lo == pytest.approx(0.5958, abs=1e-3)
        assert hi == pytest.approx(0.9821, abs=1e-3)

    def test_bounds_bracket_estimate_and_unit_interval(self):
        for s, n in ((0, 5), (5, 5), (3, 7), (50, 60)):
            lo, hi = wilson_interval(s, n)
            assert 0.0 <= lo <= s / n <= hi <= 1.0

    def test_tightens_with_samples(self):
        lo1, hi1 = wilson_interval(8, 10)
        lo2, hi2 = wilson_interval(80, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(-1, 5)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)
        with pytest.raises(ValueError):
            wilson_interval(1, 5, z=0.0)


class TestSLO:
    def test_target_validation(self):
        with pytest.raises(ValueError):
            SLOTarget(connectivity=0.0)
        with pytest.raises(ValueError):
            SLOTarget(availability=1.5)

    def test_confident_pass(self):
        v = SLOVerdict.judge(SLOTarget(availability=0.5, connectivity=0.9),
                             0.99, 99, 100)
        assert v.met and v.confident_pass and not v.confident_fail
        assert v.conclusive

    def test_confident_fail(self):
        v = SLOVerdict.judge(SLOTarget(availability=0.999,
                                       connectivity=0.9),
                             0.5, 50, 100)
        assert not v.met and v.confident_fail

    def test_inconclusive_small_sample(self):
        v = SLOVerdict.judge(SLOTarget(availability=0.9, connectivity=0.9),
                             1.0, 3, 3)
        assert v.met and not v.conclusive

    def test_as_dict_round_trips_through_json(self):
        v = SLOVerdict.judge(SLOTarget(), 0.95, 19, 20)
        assert json.loads(json.dumps(v.as_dict())) == v.as_dict()


CAMPAIGN = CampaignConfig(
    widths=(6, 6), rate=1.5, mttr=0.3, horizon=2.0, trials=4, seed=11,
    slo=SLOTarget(connectivity=0.9, availability=0.99),
)


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(widths=(1,))
        with pytest.raises(ValueError):
            CampaignConfig(trials=0)
        with pytest.raises(ValueError):
            CampaignConfig(horizon=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(arrival="uniform")
        with pytest.raises(ValueError):
            CampaignConfig(repair="magic")

    def test_report_shape_and_accounting(self):
        report = run_campaign(CAMPAIGN, jobs=1)
        assert report.accounting.all_accounted
        assert len(report.trials) == CAMPAIGN.trials
        body = report.to_dict()
        assert body["accounting"]["all_accounted"] is True
        assert 0.0 <= body["verdict"]["availability"] <= 1.0
        assert body["config"]["mesh"] == "6x6"
        for row in body["trials"]:
            assert row["epochs_up"] <= row["epochs"]
            assert row["up_time"] + row["down_time"] == pytest.approx(
                CAMPAIGN.horizon
            )

    def test_byte_identical_across_jobs_and_executors(self):
        serial = run_campaign(CAMPAIGN, jobs=1)
        procs = run_campaign(CAMPAIGN, jobs=3, executor="process")
        threads = run_campaign(CAMPAIGN, jobs=2, executor="thread")
        assert serial.to_json() == procs.to_json() == threads.to_json()

    def test_availability_is_time_weighted(self):
        report = run_campaign(CAMPAIGN, jobs=1)
        expected = sum(r["up_time"] for r in report.trials) / (
            CAMPAIGN.horizon * CAMPAIGN.trials
        )
        assert report.availability == pytest.approx(expected)

    def test_zero_rate_limit_is_fully_available(self):
        cfg = CampaignConfig(
            widths=(4, 4), rate=1e-6, mttr=0.1, horizon=1.0, trials=2,
            seed=0,
        )
        report = run_campaign(cfg, jobs=1)
        assert report.availability == 1.0
        assert report.verdict.met

    def test_repair_latency_histogram_recorded(self):
        from repro.obs import use_registry

        with use_registry() as reg:
            report = run_campaign(CAMPAIGN, jobs=1)
        total_repairs = sum(len(r["repair_latencies"])
                            for r in report.trials)
        if total_repairs:
            hist = reg.histogram("reliability_repair_latency")
            assert hist.total == total_repairs
        counters = reg.snapshot()["counters"]
        assert counters["reliability_trials_total"] == CAMPAIGN.trials


class TestReliabilityCLI:
    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        rc = main([
            "reliability", "--mesh", "6x6", "--rate", "1.5",
            "--mttr", "0.3", "--horizon", "2", "--trials", "3",
            "--seed", "11", "--connectivity", "0.9",
            "--availability", "0.99", "--json", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "all_accounted=True" in text
        body = json.loads(out.read_text())
        assert body["accounting"]["all_accounted"] is True
        assert body["config"]["trials"] == 3

    def test_cli_require_slo_gates_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        # Brutal fault rate with no repairs: the SLO cannot hold.
        rc = main([
            "reliability", "--mesh", "4x4", "--rate", "50",
            "--mttr", "1000", "--horizon", "2", "--trials", "2",
            "--seed", "0", "--connectivity", "0.95",
            "--availability", "0.999", "--require-slo",
        ])
        capsys.readouterr()
        assert rc == 1
