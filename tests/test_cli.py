"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestLambCommand:
    def test_worked_example_faults(self, capsys):
        code, out = run(
            ["lamb", "--mesh", "12x12", "--fault", "9,1", "--fault", "11,6",
             "--fault", "10,10", "--verify", "--show-lambs"],
            capsys,
        )
        assert code == 0
        assert "lambs: 2" in out
        assert "lamb (10, 11)" in out and "lamb (11, 10)" in out
        assert "verification: OK" in out

    def test_random_faults_percent(self, capsys):
        code, out = run(
            ["lamb", "--mesh", "16x16", "--percent", "2", "--seed", "3"],
            capsys,
        )
        assert code == 0
        assert "faults 5" in out  # 2% of 256 = 5.12 -> 5

    def test_render(self, capsys):
        code, out = run(
            ["lamb", "--mesh", "8x8", "--fault", "3,3", "--render"], capsys
        )
        assert code == 0
        assert "X" in out

    def test_out_file_round_trips(self, tmp_path, capsys):
        path = tmp_path / "state.json"
        code, out = run(
            ["lamb", "--mesh", "12x12", "--fault", "9,1", "--fault", "11,6",
             "--fault", "10,10", "--out", str(path)],
            capsys,
        )
        assert code == 0
        record = json.loads(path.read_text())
        assert record["lambs"] == [[10, 11], [11, 10]]

    def test_load_fault_file(self, tmp_path, capsys):
        from repro.mesh import FaultSet, Mesh
        from repro.mesh.serialization import dumps, faults_to_dict

        path = tmp_path / "faults.json"
        faults = FaultSet(Mesh((10, 10)), [(2, 2), (5, 5)])
        path.write_text(dumps(faults_to_dict(faults)))
        code, out = run(["lamb", "--load", str(path)], capsys)
        assert code == 0
        assert "faults 2" in out

    def test_requires_mesh_or_load(self, capsys):
        with pytest.raises(SystemExit):
            main(["lamb"])

    def test_random_and_explicit_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["lamb", "--mesh", "8x8", "--faults", "3", "--fault", "1,1"])


class TestPartitionCommand:
    def test_counts_and_bound(self, capsys):
        code, out = run(
            ["partition", "--mesh", "12x12", "--fault", "9,1",
             "--fault", "11,6", "--fault", "10,10", "--list"],
            capsys,
        )
        assert code == 0
        assert "SES partition: 9 sets" in out
        assert "DES partition: 7 sets" in out
        assert "size 48" in out  # (*, [2,5])


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        code, out = run(
            ["simulate", "--mesh", "8x8", "--faults", "3", "--messages", "20",
             "--flits", "4"],
            capsys,
        )
        assert code == 0
        assert "messages 20/20" in out
        assert "throughput" in out


class TestFigureCommand:
    def test_fig17_tiny(self, capsys):
        code, out = run(["figure", "fig17", "--trials", "1"], capsys)
        assert code == 0
        assert "fig17" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_non_figure_attribute_rejected(self):
        # Attributes of the module that are not figures must not be
        # callable through the CLI.
        with pytest.raises(SystemExit):
            main(["figure", "np"])


class TestWorkedExampleCommand:
    def test_output(self, capsys):
        code, out = run(["worked-example"], capsys)
        assert code == 0
        assert "matches the paper exactly: True" in out
        assert "Table 1" in out and "Table 2" in out


class TestParser:
    def test_mesh_spec_errors(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["lamb", "--mesh", "banana"])
        with pytest.raises(SystemExit):
            parser.parse_args(["lamb", "--mesh", "8x8", "--fault", "a,b"])

    def test_torus_spec(self):
        parser = build_parser()
        args = parser.parse_args(["lamb", "--mesh", "torus:8x8"])
        assert args.mesh.is_torus


class TestReconfigureCommand:
    def test_epoch_script(self, tmp_path, capsys):
        import json

        script = tmp_path / "epochs.json"
        script.write_text(json.dumps({
            "mesh": "10x10",
            "epochs": [
                {"node_faults": [[2, 2], [7, 3]]},
                {"node_faults": [[4, 8]],
                 "link_faults": [[[1, 1], [1, 2]]]},
            ],
        }))
        out_path = tmp_path / "state.json"
        code, out = run(
            ["reconfigure", str(script), "--out", str(out_path)], capsys
        )
        assert code == 0
        assert "epoch 0" in out and "epoch 1" in out
        assert "faults 4" in out
        record = json.loads(out_path.read_text())
        assert record["faults"]["mesh"]["widths"] == [10, 10]


class TestCollectiveCommand:
    @pytest.mark.parametrize(
        "algorithm", ["broadcast", "gather", "allgather", "all-to-one"]
    )
    def test_algorithms_run(self, algorithm, capsys):
        code, out = run(
            ["collective", "--mesh", "8x8", "--faults", "2",
             "--algorithm", algorithm, "--ranks", "12"],
            capsys,
        )
        assert code == 0
        assert "makespan" in out


class TestFigureSection3:
    def test_section3_callable(self, capsys):
        code, out = run(
            ["figure", "section3_one_vs_two_rounds", "--trials", "1"], capsys
        )
        assert code == 0
        assert "section3" in out


class TestWorkflowCommand:
    SMALL = [
        "--set", "sample-timeline.horizon=1.0",
        "--set", "run-campaign.horizon=1.0",
        "--set", "run-campaign.trials=2",
    ]

    def test_list_table(self, capsys):
        code, out = run(["workflow", "list"], capsys)
        assert code == 0
        assert "chaos-campaign" in out
        assert "inject-chaos" in out

    def test_list_json(self, capsys):
        code, out = run(["workflow", "list", "--json"], capsys)
        data = json.loads(out)
        assert [p["name"] for p in data["presets"]] == [
            "chaos-campaign", "reliability-slo", "serve-loadtest",
        ]
        assert len(data["steps"]) == 8

    def test_run_then_rerun_is_fully_cached(self, tmp_path, capsys):
        argv = [
            "workflow", "run", "reliability-slo",
            "--store", str(tmp_path / "ck"), "--json",
            "--out", str(tmp_path / "report.json"), *self.SMALL,
        ]
        code, out = run(argv, capsys)
        assert code == 0
        assert json.loads(out)["executed_steps"] == 3
        code, out = run(argv, capsys)
        data = json.loads(out)
        assert (code, data["executed_steps"], data["cached_steps"]) == \
            (0, 0, 3)
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["schema"] == 1
        assert set(report["sections"]) == {
            "sample-timeline", "run-campaign",
        }

    def test_budget_pause_exits_3(self, tmp_path, capsys):
        code, out = run(
            ["workflow", "run", "reliability-slo",
             "--store", str(tmp_path / "ck"),
             "--budget-seconds", "0", *self.SMALL],
            capsys,
        )
        assert code == 3
        assert "status paused" in out

    def test_unknown_preset_is_exit_1(self, capsys):
        code, out = run(["workflow", "run", "nope"], capsys)
        assert code == 1
        assert "unknown workflow preset" in out

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["workflow", "resume", "reliability-slo"])

    def test_bad_override_syntax_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["workflow", "run", "reliability-slo",
                  "--set", "no-dot-or-equals"])


class TestStoreGcCommand:
    def test_gc_shrinks_to_budget(self, tmp_path, capsys):
        from repro.service.store import ArtifactStore

        store = ArtifactStore(root=str(tmp_path))
        for i in range(4):
            store.put(f"{i:02d}" * 20, {"n": i, "pad": "y" * 100})
        code, out = run(
            ["store", "gc", "--root", str(tmp_path),
             "--max-bytes", "0", "--json"],
            capsys,
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["removed"] == 4
        assert summary["remaining_bytes"] == 0
        assert ArtifactStore(root=str(tmp_path)).digests() == ()

    def test_keep_protects_digests(self, tmp_path, capsys):
        from repro.service.store import ArtifactStore

        store = ArtifactStore(root=str(tmp_path))
        for i in range(3):
            store.put(f"{i:02d}" * 20, {"n": i})
        code, out = run(
            ["store", "gc", "--root", str(tmp_path),
             "--max-bytes", "0", "--keep", "01" * 20],
            capsys,
        )
        assert code == 0
        assert "protected" in out
        assert ArtifactStore(root=str(tmp_path)).digests() == ("01" * 20,)
