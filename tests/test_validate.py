"""Tests for definition-level validation helpers (repro.core.validate)."""

import numpy as np

from repro.core import (
    full_reach_matrix,
    is_lamb_set,
    is_survivor_set,
    survivor_violations,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import repeated, xy


class TestFullReachMatrix:
    def test_no_faults(self):
        m = Mesh((3, 3))
        R = full_reach_matrix(FaultSet(m), repeated(xy(), 1))
        assert R.all()

    def test_symmetry_not_implied(self):
        # One-round reachability is not symmetric under faults (the
        # Section 2.1 example).
        m = Mesh((12, 12))
        faults = FaultSet(m, [(2, 0)])
        R = full_reach_matrix(faults, repeated(xy(), 1))
        a, b = m.index_of((0, 0)), m.index_of((3, 2))
        assert not R[a, b] and R[b, a]


class TestSurvivorChecks:
    def test_good_mesh_is_survivor_set(self):
        m = Mesh((4, 4))
        faults = FaultSet(m)
        assert is_survivor_set(faults, repeated(xy(), 2), list(m.nodes()))

    def test_violations_reported(self):
        m = Mesh((4, 4))
        # Wall cutting the mesh in two: left and right cannot talk.
        faults = FaultSet(m, [(2, y) for y in range(4)])
        survivors = [(0, 0), (3, 3)]
        v = survivor_violations(faults, repeated(xy(), 2), survivors)
        assert v  # at least one violation
        assert not is_survivor_set(faults, repeated(xy(), 2), survivors)

    def test_faulty_member_is_violation(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(1, 1)])
        v = survivor_violations(faults, repeated(xy(), 2), [(1, 1)])
        assert v == [((1, 1), (1, 1))]

    def test_violation_limit(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, [(3, y) for y in range(6)])
        left = [(0, y) for y in range(6)]
        right = [(5, y) for y in range(6)]
        v = survivor_violations(faults, repeated(xy(), 2), left + right, limit=4)
        assert len(v) == 4


class TestIsLambSet:
    def test_wall_needs_side_sacrificed(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(2, y) for y in range(4)])
        orderings = repeated(xy(), 2)
        right_side = [(3, y) for y in range(4)]
        assert is_lamb_set(faults, orderings, right_side)
        assert not is_lamb_set(faults, orderings, [])

    def test_lamb_set_must_be_good(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(1, 1)])
        assert not is_lamb_set(faults, repeated(xy(), 2), [(1, 1)])

    def test_whole_mesh_minus_one(self):
        """Sacrificing everything except one node is always a lamb set."""
        m = Mesh((3, 3))
        faults = FaultSet(m, [(1, 1)])
        lambs = [v for v in m.nodes() if v not in {(0, 0), (1, 1)}]
        assert is_lamb_set(faults, repeated(xy(), 2), lambs)
