"""Coverage for repro.wormhole.deadlock: diagnostics rendering,
typed-error round-trips, and snapshots of empty/quiet networks."""

import pytest

from repro.mesh import FaultSet, Mesh
from repro.wormhole.deadlock import (
    DeadlockError,
    SimulationError,
    SimulationTimeout,
    StallDiagnostics,
    build_wait_graph,
    find_deadlock_cycle,
    snapshot_stalls,
)
from repro.wormhole.network import VirtualNetwork


def _diag(n, cycle=100, wait_edges=()):
    return StallDiagnostics(
        cycle=cycle,
        stalled=tuple((i, 1, 4, 0, 6) for i in range(n)),
        owned=tuple((i, (("r", i),)) for i in range(n)),
        wait_graph=tuple(wait_edges),
    )


class TestStallDiagnostics:
    def test_describe_lists_every_message_under_limit(self):
        text = _diag(3).describe()
        assert "3 unfinished message(s) at cycle 100" in text
        for i in range(3):
            assert f"msg {i}:" in text
        assert "more" not in text

    def test_describe_truncates_past_limit(self):
        text = _diag(11).describe(limit=8)
        assert "msg 7:" in text
        assert "msg 8:" not in text
        assert "... and 3 more" in text

    def test_describe_custom_limit(self):
        text = _diag(5).describe(limit=2)
        assert "... and 3 more" in text

    def test_describe_exact_limit_has_no_tail(self):
        assert "more" not in _diag(8).describe(limit=8)

    def test_describe_includes_wait_edges(self):
        text = _diag(2, wait_edges=((0, 1), (1, 0))).describe()
        assert "wait-for edges: 0->1, 1->0" in text

    def test_describe_reports_owned_counts(self):
        assert "owns 1 resource(s)" in _diag(1).describe()

    def test_num_stalled(self):
        assert _diag(4).num_stalled == 4
        assert StallDiagnostics(cycle=0).num_stalled == 0


class TestTypedErrors:
    def test_deadlock_error_roundtrip(self):
        diag = _diag(2, wait_edges=((0, 1), (1, 0)))
        err = DeadlockError([0, 1], diag)
        assert isinstance(err, SimulationError)
        assert isinstance(err, RuntimeError)
        assert err.cycle == [0, 1]
        assert err.diagnostics is diag
        assert "wait-for cycle among messages [0, 1]" in str(err)
        assert "2 unfinished message(s)" in str(err)

    def test_deadlock_error_without_diagnostics(self):
        err = DeadlockError([3, 4])
        assert err.diagnostics is None
        assert "unfinished" not in str(err)

    def test_timeout_roundtrip(self):
        diag = _diag(1, cycle=2)
        err = SimulationTimeout(2, diag)
        assert isinstance(err, SimulationError)
        assert not isinstance(err, DeadlockError)
        assert err.max_cycles == 2
        assert err.diagnostics is diag
        assert "did not drain within 2 cycles" in str(err)

    def test_static_deadlock_error_is_simulation_error(self):
        # The static prover's refusal shares the dynamic error taxonomy.
        from repro.analysis.static import StaticDeadlockError

        assert issubclass(StaticDeadlockError, SimulationError)


class TestSnapshots:
    def _net(self):
        return VirtualNetwork(FaultSet(Mesh((4, 4))), num_vcs=2)

    def test_snapshot_on_empty_network(self):
        diag = snapshot_stalls(0, [], self._net())
        assert diag.num_stalled == 0
        assert diag.owned == () and diag.wait_graph == ()
        assert "0 unfinished message(s) at cycle 0" in diag.describe()

    def test_wait_graph_on_no_messages(self):
        assert build_wait_graph([], self._net()) == {}

    def test_find_cycle_edge_cases(self):
        assert find_deadlock_cycle({}) is None
        assert find_deadlock_cycle({1: 2, 2: 3}) is None  # chain
        assert find_deadlock_cycle({1: 1}) == [1]  # self-wait
        cyc = find_deadlock_cycle({1: 2, 2: 1, 5: 1})
        assert sorted(cyc) == [1, 2]  # tail excluded

    def test_snapshot_skips_finished_messages(self):
        from repro.wormhole.packets import Hop, Message

        hops = [Hop((0, 0), (1, 0), 0)]
        done = Message(msg_id=0, source=(0, 0), dest=(1, 0), num_flits=1,
                       hops=hops, inject_cycle=0)
        done.delivered_flits = done.num_flits
        done.deliver_cycle = 7
        live = Message(msg_id=1, source=(0, 0), dest=(1, 0), num_flits=2,
                       hops=list(hops), inject_cycle=0)
        assert done.is_finished and not live.is_finished
        diag = snapshot_stalls(9, [done, live], self._net())
        assert diag.num_stalled == 1
        assert diag.stalled[0][0] == 1
