"""Tests for k-round reachability and route materialization
(repro.routing.multiround)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import FaultSet, Mesh
from repro.routing import (
    FaultGrids,
    KRoundOrdering,
    LineFaultIndex,
    Ordering,
    count_turns_multiround,
    dor_path,
    find_k_round_route,
    k_round_reachable,
    max_turns_bound,
    multi_source_reach_sets,
    one_round_reachable,
    path_is_fault_free,
    reach_set_k_rounds,
    reach_set_one_round,
    repeated,
    reverse_reach_set_one_round,
    xy,
    xyz,
)

from conftest import faulty_meshes, faulty_meshes_with_ordering, good_node_pairs


def _start_grid(mesh, v):
    g = np.zeros(mesh.widths, dtype=bool)
    g[tuple(v)] = True
    return g


class TestOneRoundReachSet:
    @given(faulty_meshes_with_ordering())
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_reachability(self, fm):
        """The grid propagation must agree with the per-pair segment
        test for every destination."""
        faults, pi = fm
        mesh = faults.mesh
        grids = FaultGrids(faults)
        idx = LineFaultIndex(faults)
        for v, _ in good_node_pairs(faults, 3):
            reach = reach_set_one_round(grids, pi, _start_grid(mesh, v))
            for w in mesh.nodes():
                assert reach[w] == one_round_reachable(idx, pi, v, w), (v, w)

    @given(faulty_meshes_with_ordering())
    @settings(max_examples=30, deadline=None)
    def test_reverse_matches_forward(self, fm):
        """u in reverse_reach(w) iff w in reach(u)."""
        faults, pi = fm
        mesh = faults.mesh
        grids = FaultGrids(faults)
        for _, w in good_node_pairs(faults, 2):
            if faults.node_is_faulty(w):
                continue
            rev = reverse_reach_set_one_round(grids, pi, _start_grid(mesh, w))
            for u in faults.good_nodes():
                fwd = reach_set_one_round(grids, pi, _start_grid(mesh, u))
                assert rev[u] == fwd[tuple(w)], (u, w)


class TestKRounds:
    def test_two_rounds_heal_one_round_gap(self):
        # From the paper: (3,2) unreachable from (0,0) in one XY round
        # when (2,0) is faulty, but reachable in two.
        m = Mesh((12, 12))
        faults = FaultSet(m, [(2, 0)])
        grids = FaultGrids(faults)
        assert not k_round_reachable(grids, repeated(xy(), 1), (0, 0), (3, 2))
        assert k_round_reachable(grids, repeated(xy(), 2), (0, 0), (3, 2))

    def test_monotone_in_k(self):
        m = Mesh((8, 8))
        faults = FaultSet(m, [(3, 3), (4, 2), (2, 5)])
        grids = FaultGrids(faults)
        r1 = reach_set_k_rounds(grids, repeated(xy(), 1), (0, 0))
        r2 = reach_set_k_rounds(grids, repeated(xy(), 2), (0, 0))
        r3 = reach_set_k_rounds(grids, repeated(xy(), 3), (0, 0))
        assert (r1 <= r2).all() and (r2 <= r3).all()

    def test_faulty_source_reaches_nothing(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, [(2, 2)])
        grids = FaultGrids(faults)
        assert not reach_set_k_rounds(grids, repeated(xy(), 2), (2, 2)).any()

    def test_mixed_orderings(self):
        m = Mesh((6, 6))
        # A wall along x=2 except a hole at y=5.  Crossing it and
        # coming back down to (5, 0) needs a round that ends with a Y
        # segment after the crossing: (YX, XY) succeeds where (XY, YX)
        # cannot (YX's final X segment is blocked on row 0).
        faults = FaultSet(m, [(2, y) for y in range(5)])
        grids = FaultGrids(faults)
        good = KRoundOrdering([Ordering((1, 0)), Ordering((0, 1))])
        bad = KRoundOrdering([Ordering((0, 1)), Ordering((1, 0))])
        assert k_round_reachable(grids, good, (0, 0), (5, 0))
        assert not k_round_reachable(grids, bad, (0, 0), (5, 0))

    @given(faulty_meshes(max_d=2, max_width=6, allow_link_faults=True))
    @settings(max_examples=20, deadline=None)
    def test_two_round_composition(self, faults):
        """v 2-reaches w iff some u with v ->1 u and u ->1 w exists."""
        mesh = faults.mesh
        grids = FaultGrids(faults)
        pi = xy() if mesh.d == 2 else Ordering(range(mesh.d))
        pairs = good_node_pairs(faults, 4)
        for v, w in pairs:
            r1v = reach_set_one_round(grids, pi, _start_grid(mesh, v))
            expected = False
            for u in mesh.nodes():
                if r1v[u]:
                    r1u = reach_set_one_round(grids, pi, _start_grid(mesh, u))
                    if r1u[tuple(w)]:
                        expected = True
                        break
            got = k_round_reachable(grids, repeated(pi, 2), v, w)
            assert got == expected, (v, w)


class TestMultiSourceReachSets:
    """The bit-parallel word-lane kernel against its sequential oracle."""

    @given(faulty_meshes(max_d=3, max_width=6, allow_link_faults=True),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_matches_sequential_oracle(self, faults, k):
        mesh = faults.mesh
        grids = FaultGrids(faults)
        pi = xy() if mesh.d == 2 else Ordering(range(mesh.d))
        orderings = repeated(pi, k)
        sources = [tuple(v) for v in mesh.nodes()]
        rows = multi_source_reach_sets(grids, orderings, sources)
        assert rows.shape == (len(sources), mesh.num_nodes)
        for v, row in zip(sources, rows):
            expect = reach_set_k_rounds(grids, orderings, v).reshape(-1)
            assert np.array_equal(row, expect), v

    def test_more_than_64_sources_cross_word_boundary(self):
        # 100 sources forces two uint64 words per node; lane packing
        # must keep each source in its own bit.
        m = Mesh((10, 10))
        faults = FaultSet(m, [(4, 4), (5, 2), (2, 7)])
        grids = FaultGrids(faults)
        orderings = repeated(xy(), 2)
        sources = [tuple(v) for v in m.nodes()][:100]
        rows = multi_source_reach_sets(grids, orderings, sources)
        for v, row in zip(sources, rows):
            expect = reach_set_k_rounds(grids, orderings, v).reshape(-1)
            assert np.array_equal(row, expect), v

    def test_faulty_source_row_all_false(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, [(2, 2)])
        grids = FaultGrids(faults)
        rows = multi_source_reach_sets(grids, repeated(xy(), 2), [(2, 2)])
        assert not rows.any()

    def test_empty_sources(self):
        m = Mesh((4, 4))
        grids = FaultGrids(FaultSet(m))
        rows = multi_source_reach_sets(grids, repeated(xy(), 2), [])
        assert rows.shape == (0, m.num_nodes)


class TestRouteMaterialization:
    @given(faulty_meshes(max_d=3, max_width=6))
    @settings(max_examples=25, deadline=None)
    def test_routes_are_valid_and_fault_free(self, faults):
        mesh = faults.mesh
        grids = FaultGrids(faults)
        orderings = repeated(Ordering(range(mesh.d)), 2)
        rng = np.random.default_rng(0)
        for v, w in good_node_pairs(faults, 4):
            paths = find_k_round_route(grids, orderings, v, w, rng=rng)
            reachable = k_round_reachable(grids, orderings, v, w)
            assert (paths is not None) == reachable
            if paths is None:
                continue
            assert paths[0][0] == tuple(v)
            assert paths[-1][-1] == tuple(w)
            for t, p in enumerate(paths):
                assert path_is_fault_free(faults, p)
                # Each round's path is a valid DOR route for its ordering.
                assert p == dor_path(mesh, orderings[t], p[0], p[-1])
            assert count_turns_multiround(paths) <= max_turns_bound(
                mesh.d, orderings.k
            )

    def test_policies_give_valid_routes(self):
        m = Mesh((8, 8))
        faults = FaultSet(m, [(3, 0), (3, 1), (0, 3), (1, 3)])
        grids = FaultGrids(faults)
        orderings = repeated(xy(), 2)
        rng = np.random.default_rng(1)
        for policy in ("shortest", "first", "random"):
            paths = find_k_round_route(
                grids, orderings, (0, 0), (7, 7), policy=policy, rng=rng
            )
            assert paths is not None
            for p in paths:
                assert path_is_fault_free(faults, p)

    def test_shortest_policy_is_minimal(self):
        m = Mesh((8, 8))
        faults = FaultSet(m)
        grids = FaultGrids(faults)
        orderings = repeated(xy(), 2)
        paths = find_k_round_route(grids, orderings, (0, 0), (5, 5))
        assert paths is not None
        hops = sum(len(p) - 1 for p in paths)
        assert hops == 10  # fault-free: exactly the L1 distance

    def test_unknown_policy(self):
        m = Mesh((4, 4))
        grids = FaultGrids(FaultSet(m))
        with pytest.raises(ValueError):
            find_k_round_route(grids, repeated(xy(), 2), (0, 0), (3, 3), policy="bogus")

    def test_faulty_endpoint_returns_none(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(0, 0)])
        grids = FaultGrids(faults)
        assert find_k_round_route(grids, repeated(xy(), 2), (0, 0), (3, 3)) is None
        assert find_k_round_route(grids, repeated(xy(), 2), (3, 3), (0, 0)) is None
