"""Tests for the vertex cover solvers (repro.graphs.wvc,
repro.graphs.bipartite_vc, repro.graphs.vertex_cover)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    cover_weight,
    exact_min_vertex_cover,
    is_vertex_cover,
    matching_2approx_vertex_cover,
    min_weight_vertex_cover_bipartite,
    random_graph,
    wvc_exact,
    wvc_local_ratio,
)


def brute_force_wvc(n, weights, edges):
    """Reference: try all subsets (n <= ~14)."""
    best, best_w = set(range(n)), sum(weights)
    for r in range(n + 1):
        for subset in itertools.combinations(range(n), r):
            s = set(subset)
            if is_vertex_cover(edges, s):
                w = cover_weight(weights, s)
                if w < best_w:
                    best, best_w = s, w
    return best, best_w


@st.composite
def weighted_graphs(draw, max_n=9):
    n = draw(st.integers(2, max_n))
    weights = [draw(st.integers(1, 9)) for _ in range(n)]
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=12, unique=True))
        if possible
        else []
    )
    return n, [float(w) for w in weights], edges


class TestLocalRatio:
    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_is_cover_and_2approx(self, g):
        n, weights, edges = g
        cover = wvc_local_ratio(n, weights, edges)
        assert is_vertex_cover(edges, cover)
        _, opt = brute_force_wvc(n, weights, edges)
        assert cover_weight(weights, cover) <= 2 * opt + 1e-9

    def test_empty_graph(self):
        assert wvc_local_ratio(3, [1, 1, 1], []) == set()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            wvc_local_ratio(2, [1, 1], [(0, 0)])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            wvc_local_ratio(2, [-1, 1], [(0, 1)])

    def test_zero_weight_vertices_enter_for_free(self):
        cover = wvc_local_ratio(3, [0.0, 5.0, 5.0], [(0, 1), (0, 2)])
        assert cover == {0}


class TestExact:
    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, g):
        n, weights, edges = g
        cover = wvc_exact(n, weights, edges)
        assert is_vertex_cover(edges, cover)
        _, opt = brute_force_wvc(n, weights, edges)
        assert cover_weight(weights, cover) == pytest.approx(opt)

    def test_size_guard(self):
        n = 50
        edges = [(i, i + 1) for i in range(0, n - 1, 2)]
        with pytest.raises(ValueError):
            wvc_exact(n, [1.0] * n, edges, max_vertices=10)

    def test_unweighted_wrapper(self):
        # Path graph 0-1-2-3: optimum cover {1, 2}.
        cover = exact_min_vertex_cover(4, [(0, 1), (1, 2), (2, 3)])
        assert len(cover) == 2
        assert is_vertex_cover([(0, 1), (1, 2), (2, 3)], cover)


class TestBipartite:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_exact_wvc(self, seed):
        """Max-flow bipartite WVC must equal the exact general solver
        on the same (bipartitioned) graph."""
        rng = np.random.default_rng(seed)
        p, q = int(rng.integers(1, 6)), int(rng.integers(1, 6))
        lw = [float(rng.integers(1, 9)) for _ in range(p)]
        rw = [float(rng.integers(1, 9)) for _ in range(q)]
        edges = [
            (i, j) for i in range(p) for j in range(q) if rng.random() < 0.4
        ]
        cl, cr, weight = min_weight_vertex_cover_bipartite(lw, rw, edges)
        # Validity.
        for (i, j) in edges:
            assert i in cl or j in cr
        assert weight == pytest.approx(
            sum(lw[i] for i in cl) + sum(rw[j] for j in cr)
        )
        # Optimality vs exact WVC on the merged graph.
        merged_weights = lw + rw
        merged_edges = [(i, p + j) for (i, j) in edges]
        opt_cover = wvc_exact(p + q, merged_weights, merged_edges)
        assert weight == pytest.approx(cover_weight(merged_weights, opt_cover))

    def test_worked_example_shape(self):
        # The Section 5 bipartite graph (Fig. 10): s3(w2), s8(w1) vs
        # d2(w1), d5(w1), d6(w5); edges s3-d5, s8-d2, s8-d6.
        lw = [2.0, 1.0]  # s3, s8
        rw = [1.0, 1.0, 5.0]  # d2, d5, d6
        edges = [(0, 1), (1, 0), (1, 2)]
        cl, cr, weight = min_weight_vertex_cover_bipartite(lw, rw, edges)
        assert weight == 2.0
        assert cl == {1} and cr == {1}  # {s8, d5}

    def test_no_edges(self):
        cl, cr, w = min_weight_vertex_cover_bipartite([1.0], [1.0], [])
        assert cl == set() and cr == set() and w == 0.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            min_weight_vertex_cover_bipartite([1.0], [1.0], [(0, 1)])


class TestHelpers:
    def test_matching_2approx(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        cover = matching_2approx_vertex_cover(4, edges)
        assert is_vertex_cover(edges, cover)
        assert len(cover) <= 4  # 2 * optimum (2)

    def test_random_graph_shape(self):
        rng = np.random.default_rng(0)
        edges = random_graph(6, 0.5, rng)
        assert all(0 <= u < v < 6 for (u, v) in edges)
        assert random_graph(6, 0.0, rng) == []
        assert len(random_graph(4, 1.0, rng)) == 6

    def test_random_graph_bad_p(self):
        with pytest.raises(ValueError):
            random_graph(4, 1.5, np.random.default_rng(0))
