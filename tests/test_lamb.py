"""Tests for the lamb algorithms (repro.core.lamb)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import METHODS, find_lamb_set, is_lamb_set
from repro.mesh import FaultSet, Mesh, random_node_faults
from repro.routing import KRoundOrdering, Ordering, ascending, repeated, xy, xyz

from conftest import faulty_meshes, faulty_meshes_with_ordering


class TestWorkedExample:
    def test_lamb_set(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        assert sorted(result.lambs) == [(10, 11), (11, 10)]
        assert result.cover_weight == 2.0
        assert result.size == 2
        assert result.num_ses == 9
        assert result.num_des == 7

    def test_result_accessors(self, paper_faults):
        result = find_lamb_set(paper_faults, repeated(xy(), 2))
        assert result.is_lamb((10, 11))
        assert not result.is_lamb((0, 0))
        assert result.is_survivor((0, 0))
        assert not result.is_survivor((9, 1))  # faulty
        assert not result.is_survivor((10, 11))  # lamb
        assert len(result.survivors()) == 144 - 3 - 2
        assert result.additional_damage() == pytest.approx(2 / 3)
        assert set(result.timings) >= {"partition", "reachability", "wvc", "total"}

    def test_all_methods_valid_and_within_guarantees(self, paper_faults):
        orderings = repeated(xy(), 2)
        sizes = {}
        for method in METHODS:
            result = find_lamb_set(paper_faults, orderings, method=method)
            assert is_lamb_set(paper_faults, orderings, result.lambs)
            sizes[method] = result.size
        # Bipartite happens to be optimal on this instance; the
        # general-exact method must be; the local-ratio method is a
        # 2-approximation.
        assert sizes["general-exact"] == 2
        assert sizes["bipartite"] == 2
        assert sizes["general"] <= 2 * sizes["general-exact"]


class TestValidity:
    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=30, deadline=None)
    def test_bipartite_output_is_lamb_set(self, fm):
        faults, pi = fm
        orderings = repeated(pi, 2)
        result = find_lamb_set(faults, orderings)
        assert is_lamb_set(faults, orderings, result.lambs)
        # Lambs are never faulty.
        for v in result.lambs:
            assert not faults.node_is_faulty(v)

    @given(faulty_meshes(max_d=2, max_width=6))
    @settings(max_examples=15, deadline=None)
    def test_general_methods_output_lamb_sets(self, faults):
        pi = ascending(faults.mesh.d)
        orderings = repeated(pi, 2)
        for method in ("general", "general-exact"):
            result = find_lamb_set(faults, orderings, method=method)
            assert is_lamb_set(faults, orderings, result.lambs), method

    @given(faulty_meshes_with_ordering(max_width=6, max_node_faults=4))
    @settings(max_examples=15, deadline=None)
    def test_one_round_and_three_rounds(self, fm):
        faults, pi = fm
        for k in (1, 3):
            orderings = repeated(pi, k)
            result = find_lamb_set(faults, orderings)
            assert is_lamb_set(faults, orderings, result.lambs), k

    @given(faulty_meshes(max_d=2, max_width=6, allow_link_faults=False))
    @settings(max_examples=10, deadline=None)
    def test_mixed_round_orderings(self, faults):
        d = faults.mesh.d
        orderings = KRoundOrdering(
            [ascending(d), Ordering(tuple(reversed(range(d))))]
        )
        result = find_lamb_set(faults, orderings)
        assert is_lamb_set(faults, orderings, result.lambs)

    def test_no_faults_no_lambs(self):
        result = find_lamb_set(FaultSet(Mesh((8, 8))), repeated(xy(), 2))
        assert result.size == 0
        assert result.cover_weight == 0.0


class TestApproximationQuality:
    @given(faulty_meshes(max_d=2, max_width=6))
    @settings(max_examples=15, deadline=None)
    def test_lamb1_within_twice_optimal(self, faults):
        """Lemma 6.6: the bipartite method is a 2-approximation.  The
        general-exact method gives the optimum (Theorem 6.9, r = 1)."""
        orderings = repeated(ascending(faults.mesh.d), 2)
        approx = find_lamb_set(faults, orderings, method="bipartite")
        exact = find_lamb_set(faults, orderings, method="general-exact")
        assert exact.size <= approx.size <= 2 * exact.size

    @given(faulty_meshes(max_d=2, max_width=6))
    @settings(max_examples=10, deadline=None)
    def test_general_2approx(self, faults):
        orderings = repeated(ascending(faults.mesh.d), 2)
        approx = find_lamb_set(faults, orderings, method="general")
        exact = find_lamb_set(faults, orderings, method="general-exact")
        assert exact.size <= approx.size <= 2 * exact.size

    def test_k2_beats_k1_on_random_faults(self):
        mesh = Mesh.square(2, 16)
        rng = np.random.default_rng(0)
        faults = random_node_faults(mesh, 12, rng)
        r1 = find_lamb_set(faults, repeated(xy(), 1))
        r2 = find_lamb_set(faults, repeated(xy(), 2))
        assert r2.size <= r1.size


class TestExtensions:
    def test_values_steer_the_cover(self, paper_faults):
        orderings = repeated(xy(), 2)
        plain = find_lamb_set(paper_faults, orderings)
        # Make the default lambs expensive and an alternative cheap.
        # Zero entries force covering {S3 or D5} x {S8 or (D2, D6)}.
        values = {(10, 11): 1.0, (11, 10): 1.0, (9, 0): 0.0}
        weighted = find_lamb_set(paper_faults, orderings, values=values)
        assert is_lamb_set(paper_faults, orderings, weighted.lambs)
        assert weighted.cover_weight <= plain.cover_weight + 1.0

    def test_value_validation(self, paper_faults):
        with pytest.raises(ValueError):
            find_lamb_set(
                paper_faults, repeated(xy(), 2), values={(0, 0): 1.5}
            )

    def test_predetermined_lambs_are_included(self, paper_faults):
        orderings = repeated(xy(), 2)
        pre = [(0, 0), (5, 5)]
        result = find_lamb_set(paper_faults, orderings, predetermined=pre)
        assert set(pre) <= set(result.lambs)
        assert is_lamb_set(paper_faults, orderings, result.lambs)

    def test_predetermined_must_be_good(self, paper_faults):
        with pytest.raises(ValueError):
            find_lamb_set(
                paper_faults, repeated(xy(), 2), predetermined=[(9, 1)]
            )

    def test_predetermined_can_absorb_cover(self, paper_faults):
        """Predetermining the natural lambs makes the cover free."""
        orderings = repeated(xy(), 2)
        result = find_lamb_set(
            paper_faults, orderings, predetermined=[(10, 11), (11, 10)]
        )
        assert result.cover_weight == 0.0
        assert sorted(result.lambs) == [(10, 11), (11, 10)]

    def test_unknown_method(self, paper_faults):
        with pytest.raises(ValueError):
            find_lamb_set(paper_faults, repeated(xy(), 2), method="nope")


class TestHypercube:
    def test_ecube_on_hypercube(self):
        """Section 7: the algorithms apply directly to M_d(2)."""
        mesh = Mesh.hypercube(4)
        faults = FaultSet(mesh, [(0, 1, 0, 1), (1, 1, 1, 1)])
        orderings = repeated(ascending(4), 2)
        result = find_lamb_set(faults, orderings)
        assert is_lamb_set(faults, orderings, result.lambs)
