"""Golden parity: the event-driven ``frontier`` engine must be
cycle-exact against the historical ``scan`` engine.

Both engines share the flit-advance kernel; what differs is *which*
messages are visited each cycle.  These tests pin that the frontier's
park/wake bookkeeping is observationally invisible: identical
:class:`SimStats`, per-message fates, full trace streams, final cycle
counts and deadlock diagnostics on seeded scenarios — including the
chaos abort/drain/retry paths.
"""

import numpy as np
import pytest

from repro.mesh import Mesh, random_node_faults
from repro.mesh.faults import FaultSet
from repro.routing import repeated, xy
from repro.wormhole.chaos import seeded_chaos_run
from repro.wormhole.deadlock import DeadlockError
from repro.wormhole.packets import Hop
from repro.wormhole.simulator import SIM_ENGINES, WormholeSimulator
from repro.wormhole.trace import Tracer


def _seeded_sim(engine, seed, *, faults_n=3, tracer=None, **kw):
    mesh = Mesh((8, 8))
    faults = random_node_faults(mesh, faults_n, np.random.default_rng(seed))
    sim = WormholeSimulator(
        faults, repeated(xy(), 2), seed=seed, engine=engine, tracer=tracer, **kw
    )
    good = [
        tuple(int(x) for x in v)
        for v in mesh.nodes()
        if not faults.node_is_faulty(tuple(int(x) for x in v))
    ]
    return sim, good


def _load_traffic(sim, good, seed, n=60, window=40):
    rng = np.random.default_rng(seed + 1)
    for _ in range(n):
        s, d = rng.choice(len(good), size=2, replace=False)
        sim.send(good[s], good[d], num_flits=int(rng.integers(2, 7)),
                 inject_cycle=int(rng.integers(0, window)))


def _fates(sim):
    return [
        (m.msg_id, m.deliver_cycle, m.abort_reason, m.attempts,
         tuple(m.flit_pos))
        for m in sim.messages.values()
    ]


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        mesh = Mesh((4, 4))
        with pytest.raises(ValueError, match="unknown engine"):
            WormholeSimulator(FaultSet(mesh), repeated(xy(), 2), engine="warp")

    def test_env_default(self, monkeypatch):
        mesh = Mesh((4, 4))
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scan")
        sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2))
        assert sim.engine == "scan"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2))
        assert sim.engine == "frontier"
        assert sim.engine in SIM_ENGINES


class TestGoldenStats:
    """The frontier engine against values recorded from the scan
    engine (seeded 8x8 scenario, 3 faults, 60 messages)."""

    def _run(self, engine):
        sim, good = _seeded_sim(engine, 5)
        _load_traffic(sim, good, 5)
        return sim.run(), sim

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_pinned_stats(self, engine):
        stats, _ = self._run(engine)
        assert stats.cycles == 52
        assert stats.delivered == 60
        assert stats.avg_latency == pytest.approx(9.683333333333334)
        assert stats.max_latency == 20
        assert stats.avg_hops == pytest.approx(5.616666666666666)

    def test_stats_equal(self):
        a, _ = self._run("scan")
        b, _ = self._run("frontier")
        assert a == b


class TestCycleExactParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_traces_and_fates_match(self, seed):
        """Full event streams — injections, acquisitions, per-flit
        hops, releases, deliveries — must be identical."""
        runs = {}
        for engine in SIM_ENGINES:
            tracer = Tracer()
            sim, good = _seeded_sim(engine, seed, tracer=tracer)
            _load_traffic(sim, good, seed, n=80)
            stats = sim.run()
            runs[engine] = (stats, _fates(sim), tracer.events, sim.cycle)
        assert runs["scan"][0] == runs["frontier"][0]
        assert runs["scan"][1] == runs["frontier"][1]
        assert runs["scan"][2] == runs["frontier"][2]
        assert runs["scan"][3] == runs["frontier"][3]

    @pytest.mark.parametrize("seed", [0, 3])
    def test_tight_buffers(self, seed):
        """buffer_flits=1 maximizes back-pressure (straggler tails in
        released resources' buffers — the subtle wake case)."""
        runs = {}
        for engine in SIM_ENGINES:
            tracer = Tracer()
            sim, good = _seeded_sim(
                engine, seed, tracer=tracer, buffer_flits=1
            )
            _load_traffic(sim, good, seed, n=70, window=10)
            sim.run()
            runs[engine] = (_fates(sim), tracer.events, sim.cycle)
        assert runs["scan"] == runs["frontier"]

    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_live_fault_parity(self, seed):
        """Mid-flight fault injection: abort/drain/retry, rerouting
        and the conservative frontier rebuild."""
        runs = {}
        for engine in SIM_ENGINES:
            tracer = Tracer()
            sim, good = _seeded_sim(engine, seed, tracer=tracer)
            _load_traffic(sim, good, seed, n=80)
            for _ in range(25):
                sim.step()
            victim = good[len(good) // 2]
            sim.inject_faults(node_faults=[victim])
            stats = sim.run()
            runs[engine] = (stats, _fates(sim), tracer.events, sim.cycle)
        assert runs["scan"] == runs["frontier"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_run_parity(self, monkeypatch, seed):
        """The full chaos machinery (schedules, rollback epochs,
        escalation, quarantine) through both engines."""
        reports = {}
        for engine in SIM_ENGINES:
            monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
            reports[engine] = seeded_chaos_run(
                seed=seed, num_events=4, num_messages=150
            )
        assert reports["scan"].summary() == reports["frontier"].summary()
        assert reports["scan"].stats == reports["frontier"].stats

    def test_deadlock_parity(self):
        """A deliberately broken VC discipline must deadlock at the
        same cycle with the same wait-for cycle in both engines."""
        outcomes = {}
        for engine in SIM_ENGINES:
            mesh = Mesh((4, 4))
            sim = WormholeSimulator(
                FaultSet(mesh), repeated(xy(), 2), engine=engine,
                vc_of_round=lambda t: 0, num_vcs=1, buffer_flits=1,
            )
            ring = [(0, 0), (2, 0), (2, 2), (0, 2)]

            def L(a, b):
                path = [a]
                x, y = a
                while x != b[0]:
                    x += 1 if b[0] > x else -1
                    path.append((x, y))
                while y != b[1]:
                    y += 1 if b[1] > y else -1
                    path.append((x, y))
                return path

            for i in range(4):
                a, b, c = ring[i], ring[(i + 1) % 4], ring[(i + 2) % 4]
                hops = [
                    Hop(u, v, 0)
                    for p in (L(a, b), L(b, c))
                    for u, v in zip(p, p[1:])
                ]
                sim.send(a, c, num_flits=12, hops=hops)
            with pytest.raises(DeadlockError) as exc:
                sim.run(5000)
            outcomes[engine] = (sorted(exc.value.cycle), sim.cycle)
        assert outcomes["scan"] == outcomes["frontier"]


class TestRouteCache:
    def _sim(self, **kw):
        mesh = Mesh((8, 8))
        return WormholeSimulator(FaultSet(mesh), repeated(xy(), 2), **kw)

    def test_hit_returns_same_route(self):
        sim = self._sim()
        a = sim.build_hops((0, 0), (5, 3))
        b = sim.build_hops((0, 0), (5, 3))
        assert a == b and b is not None
        assert ((0, 0), (5, 3)) in sim._route_cache

    def test_invalidated_on_live_fault(self):
        sim = self._sim()
        hops = sim.build_hops((0, 0), (5, 0))
        assert hops is not None
        epoch = sim.routing_epoch
        sim.inject_faults(node_faults=[(2, 0)])
        assert sim.routing_epoch == epoch + 1
        assert not sim._route_cache
        rerouted = sim.build_hops((0, 0), (5, 0))
        assert rerouted is not None
        assert all((2, 0) not in (h.src, h.dst) for h in rerouted)

    def test_invalidated_on_set_orderings(self):
        sim = self._sim()
        sim.build_hops((0, 0), (3, 3))
        epoch = sim.routing_epoch
        sim.set_orderings(repeated(xy(), 3))
        assert sim.routing_epoch == epoch + 1
        assert not sim._route_cache

    def test_unreachable_is_cached(self):
        mesh = Mesh((5, 5))
        # Wall off the left column below/above the source.
        wall = [(1, y) for y in range(5)]
        faults = FaultSet(mesh).with_faults(wall, [])
        sim = WormholeSimulator(faults, repeated(xy(), 2))
        assert sim.build_hops((0, 0), (4, 4)) is None
        assert sim._route_cache[((0, 0), (4, 4))] is None
        assert sim.build_hops((0, 0), (4, 4)) is None

    def test_opt_out(self):
        sim = self._sim(route_cache=False)
        assert sim.build_hops((0, 0), (5, 3)) is not None
        assert not sim._route_cache


class TestDeterminism:
    """Run-to-run determinism regressions.

    Hash-order hazards (set iteration, ``set.pop()`` worklists) were
    scrubbed from the pipeline by the REP102 lint rule (see
    ``repro analyze``); these tests pin the behaviors that would drift
    first if one crept back in — the frontier engine's park/wake
    worklist and the route cache's iteration-order independence.
    """

    def _full_run(self, *, seed=5, route_cache=True, n=80):
        tracer = Tracer()
        sim, good = _seeded_sim(
            "frontier", seed, tracer=tracer, route_cache=route_cache
        )
        _load_traffic(sim, good, seed, n=n)
        stats = sim.run()
        return stats, _fates(sim), tracer.events

    def test_identical_reruns_identical_everything(self):
        """Two fresh same-seed runs: stats, per-message fates and the
        full event stream must match byte-for-byte (park/wake order
        must not depend on set/dict hash order)."""
        assert self._full_run() == self._full_run()

    def test_route_cache_is_behavior_neutral(self):
        """Cache on vs off must not change a single event: a cache-hit
        route must be exactly the route the policy would regenerate."""
        a = self._full_run(route_cache=True)
        b = self._full_run(route_cache=False)
        assert a == b

    def test_live_fault_rerun_determinism(self):
        """Park/wake rebuild after mid-flight faults (the conservative
        frontier reconstruction) is fully reproducible."""

        def run():
            tracer = Tracer()
            sim, good = _seeded_sim("frontier", 3, tracer=tracer)
            _load_traffic(sim, good, 3, n=70)
            for _ in range(20):
                sim.step()
            sim.inject_faults(node_faults=[good[len(good) // 3]])
            sim.run()
            return _fates(sim), tracer.events, sim.cycle

        assert run() == run()

    def test_component_seeding_is_insertion_order_independent(self):
        """The quarantine rung's flood fill must not depend on the
        order faults were reported (it used to pop seeds from a set)."""
        from repro.core.reconfigure import largest_good_component

        mesh = Mesh((8, 8))
        # A wall splitting the mesh into two components of equal size
        # is the tie the old hash-order seeding could break either way.
        wall = [(3, y) for y in range(8)] + [(4, y) for y in range(8)]
        results = []
        for order in (wall, wall[::-1], wall[::2] + wall[1::2]):
            faults = FaultSet(mesh).with_faults(order, [])
            results.append(largest_good_component(faults))
        assert results[0] == results[1] == results[2]
        best, rest = results[0]
        assert len(best) == len(rest) == 24  # equal-size tie, pinned


class TestHopKeys:
    def test_cached_and_invalidated_on_route_swap(self):
        sim = TestRouteCache()._sim()
        m = sim.send((0, 0), (4, 2), num_flits=2)
        keys = m.hop_keys
        assert keys is m.hop_keys  # cached per hops identity
        assert keys == [(h.src, h.dst, h.vc) for h in m.hops]
        m.reset_for_retry(sim.build_hops((0, 0), (4, 2)), inject_cycle=5)
        assert m.hop_keys == [(h.src, h.dst, h.vc) for h in m.hops]
