"""Tests for the vectorized reachability kernel and matrix products
(repro.core.reachability)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bool_matmul,
    density,
    find_des_partition,
    find_reachability,
    find_ses_partition,
    full_reach_matrix,
    one_round_reachability_matrix,
)
from repro.core.reachability import (
    PackedBoolMatrix,
    _group_rows,
    packed_bool_matmul,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import (
    KRoundOrdering,
    LineFaultIndex,
    Ordering,
    dor_path,
    path_is_fault_free,
    repeated,
    xy,
)

from conftest import faulty_meshes_with_ordering


def _reps(rects, mesh):
    if not rects:
        return np.empty((0, mesh.d), dtype=np.int64)
    return np.asarray([r.lo for r in rects], dtype=np.int64)


class TestOneRoundMatrix:
    @given(faulty_meshes_with_ordering())
    @settings(max_examples=50, deadline=None)
    def test_matches_route_walking(self, fm):
        """The vectorized kernel must agree with explicit route checks
        for every pair of good nodes (not just partition reps)."""
        faults, pi = fm
        mesh = faults.mesh
        good = faults.good_nodes()
        if not good:
            return
        nodes = np.asarray(good, dtype=np.int64)
        idx = LineFaultIndex(faults)
        R = one_round_reachability_matrix(idx, pi, nodes, nodes)
        for i, v in enumerate(good):
            for j, w in enumerate(good):
                expected = path_is_fault_free(faults, dor_path(mesh, pi, v, w))
                assert R[i, j] == expected, (v, w)

    def test_rejects_faulty_reps(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(1, 1)])
        idx = LineFaultIndex(faults)
        bad = np.asarray([(1, 1)])
        good = np.asarray([(0, 0)])
        with pytest.raises(ValueError):
            one_round_reachability_matrix(idx, xy(), bad, good)
        with pytest.raises(ValueError):
            one_round_reachability_matrix(idx, xy(), good, bad)

    def test_empty_inputs(self):
        m = Mesh((4, 4))
        idx = LineFaultIndex(FaultSet(m))
        empty = np.empty((0, 2), dtype=np.int64)
        some = np.asarray([(0, 0)])
        assert one_round_reachability_matrix(idx, xy(), empty, some).shape == (0, 1)
        assert one_round_reachability_matrix(idx, xy(), some, empty).shape == (1, 0)


class TestBoolMatmul:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        m, n, k = (int(x) for x in rng.integers(1, 12, size=3))
        A = rng.random((m, n)) < rng.uniform(0.02, 0.9)
        B = rng.random((n, k)) < rng.uniform(0.02, 0.9)
        expected = (A @ B) > 0
        assert np.array_equal(bool_matmul(A, B), expected)
        assert np.array_equal(bool_matmul(A, sp.csr_matrix(B)), expected)

    def test_empty(self):
        A = np.zeros((0, 3), dtype=bool)
        B = np.zeros((3, 2), dtype=bool)
        assert bool_matmul(A, B).shape == (0, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bool_matmul(np.ones((2, 3), bool), np.ones((2, 3), bool))

    def test_density(self):
        A = np.asarray([[True, False], [False, False]])
        assert density(A) == 0.25
        assert density(sp.csr_matrix(A)) == 0.25
        assert density(np.zeros((0, 3), bool)) == 0.0


class TestFindReachability:
    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=30, deadline=None)
    def test_rk_matches_brute_force(self, fm):
        """R^(k) between reps must equal brute-force k-round
        reachability (k = 2, same ordering per round)."""
        faults, pi = fm
        mesh = faults.mesh
        orderings = repeated(pi, 2)
        ses = find_ses_partition(faults, pi)
        des = find_des_partition(faults, pi)
        index = LineFaultIndex(faults)
        data = find_reachability(
            index, orderings, [ses, ses], [des, des],
            [_reps(ses, mesh)] * 2, [_reps(des, mesh)] * 2,
        )
        full = full_reach_matrix(faults, orderings)
        for i, S in enumerate(ses):
            vi = mesh.index_of(S.lo)
            for j, D in enumerate(des):
                wj = mesh.index_of(D.lo)
                assert data.Rk[i, j] == full[vi, wj], (S.spec(), D.spec())

    @given(faulty_meshes_with_ordering(max_width=5, max_d=2))
    @settings(max_examples=15, deadline=None)
    def test_rk_extends_to_whole_sets(self, fm):
        """Lemma 4.1 + Lemma 5.1: R^(k)(i, j) answers for *every*
        member of S_i x D_j, not just the representatives."""
        faults, pi = fm
        mesh = faults.mesh
        orderings = repeated(pi, 2)
        ses = find_ses_partition(faults, pi)
        des = find_des_partition(faults, pi)
        index = LineFaultIndex(faults)
        data = find_reachability(
            index, orderings, [ses, ses], [des, des],
            [_reps(ses, mesh)] * 2, [_reps(des, mesh)] * 2,
        )
        full = full_reach_matrix(faults, orderings)
        for i, S in enumerate(ses):
            for j, D in enumerate(des):
                for v in S.nodes():
                    for w in D.nodes():
                        assert (
                            full[mesh.index_of(v), mesh.index_of(w)]
                            == data.Rk[i, j]
                        ), (v, w)

    def test_mixed_round_orderings(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, [(2, 1), (4, 3)])
        pis = [Ordering((0, 1)), Ordering((1, 0))]
        orderings = KRoundOrdering(pis)
        parts_s = [find_ses_partition(faults, pi) for pi in pis]
        parts_d = [find_des_partition(faults, pi) for pi in pis]
        index = LineFaultIndex(faults)
        data = find_reachability(
            index, orderings, parts_s, parts_d,
            [_reps(p, m) for p in parts_s], [_reps(p, m) for p in parts_d],
        )
        full = full_reach_matrix(faults, orderings)
        for i, S in enumerate(parts_s[0]):
            for j, D in enumerate(parts_d[-1]):
                assert data.Rk[i, j] == full[m.index_of(S.lo), m.index_of(D.lo)]

    def test_partial_products_are_monotone(self, paper_faults):
        pi = xy()
        orderings = repeated(pi, 3)
        ses = find_ses_partition(paper_faults, pi)
        des = find_des_partition(paper_faults, pi)
        index = LineFaultIndex(paper_faults)
        data = find_reachability(
            index, orderings, [ses] * 3, [des] * 3,
            [_reps(ses, paper_faults.mesh)] * 3,
            [_reps(des, paper_faults.mesh)] * 3,
        )
        assert len(data.partial) == 3
        assert (data.partial[0] <= data.partial[1]).all()
        assert (data.partial[1] <= data.partial[2]).all()
        # Three rounds heal everything in the worked example.
        assert data.partial[2].all()

    def test_stats_present(self, paper_faults):
        pi = xy()
        orderings = repeated(pi, 2)
        ses = find_ses_partition(paper_faults, pi)
        des = find_des_partition(paper_faults, pi)
        index = LineFaultIndex(paper_faults)
        data = find_reachability(
            index, orderings, [ses] * 2, [des] * 2,
            [_reps(ses, paper_faults.mesh)] * 2,
            [_reps(des, paper_faults.mesh)] * 2,
        )
        for key in ("R1_density", "Rk_density", "I1_density", "R1I1_density"):
            assert 0.0 <= data.stats[key] <= 1.0


class TestPackedBoolMatrix:
    """The packed kernels must be bit-identical to the dense-bool
    oracle (``bool_matmul``) across shapes, densities, and the kernel
    crossover points (gather / transpose-gather / saturating probe)."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_matmul_matches_dense_oracle(self, seed):
        rng = np.random.default_rng(seed)
        p, n, q = (int(x) for x in rng.integers(0, 100, size=3))
        da, db = rng.uniform(0.0, 1.0, size=2) ** 2
        A = rng.random((p, n)) < da
        B = rng.random((n, q)) < db
        got = packed_bool_matmul(A, B)
        assert got.shape == (p, q)
        assert np.array_equal(got.unpack(), bool_matmul(A, B))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip_and_elementwise(self, seed):
        rng = np.random.default_rng(seed)
        p, q = (int(x) for x in rng.integers(0, 200, size=2))
        A = rng.random((p, q)) < rng.uniform(0, 1)
        B = rng.random((p, q)) < rng.uniform(0, 1)
        pa, pb = PackedBoolMatrix.pack(A), PackedBoolMatrix.pack(B)
        assert np.array_equal(pa.unpack(), A)
        assert np.array_equal((pa & pb).unpack(), A & B)
        assert np.array_equal((pa | pb).unpack(), A | B)
        assert pa.count_nonzero() == int(np.count_nonzero(A))
        assert np.array_equal(
            pa.row_counts(), np.count_nonzero(A, axis=1)
        )
        if A.size:
            assert density(pa) == density(A)
        assert np.array_equal(pa.transpose().unpack(), A.T)

    def test_saturating_probe_kernel_exact(self):
        # Wide dense left factor with rows that do and do not saturate,
        # forcing both the probe and the fallback full gather.
        rng = np.random.default_rng(3)
        n = 400
        A = rng.random((64, n)) < 0.9
        B = np.zeros((n, 200), dtype=bool)
        B[:, :150] = rng.random((n, 150)) < 0.5  # saturating block
        B[::7, 150:] = True  # sparse tail: rows stay unsaturated
        assert np.array_equal(
            packed_bool_matmul(A, B).unpack(), bool_matmul(A, B)
        )

    def test_transpose_kernel_exact(self):
        # Dense left, very sparse right: the (B^T A^T)^T route.
        rng = np.random.default_rng(4)
        A = rng.random((300, 300)) < 0.6
        B = rng.random((300, 300)) < 0.01
        assert np.array_equal(
            packed_bool_matmul(A, B).unpack(), bool_matmul(A, B)
        )

    def test_accepts_sparse_input(self):
        rng = np.random.default_rng(5)
        A = rng.random((40, 30)) < 0.3
        B = rng.random((30, 20)) < 0.1
        got = packed_bool_matmul(A, sp.csr_matrix(B))
        assert np.array_equal(got.unpack(), bool_matmul(A, B))

    def test_padding_bits_stay_zero(self):
        # 65 columns -> 2 words with 63 padding bits; products and
        # elementwise ops must keep them zero or popcounts drift.
        A = np.ones((3, 65), dtype=bool)
        pa = PackedBoolMatrix.pack(A)
        assert pa.words.shape == (3, 2)
        assert pa.count_nonzero() == 3 * 65
        prod = packed_bool_matmul(A, np.ones((65, 65), dtype=bool))
        assert prod.count_nonzero() == 3 * 65

    def test_shape_and_type_errors(self):
        a = PackedBoolMatrix.pack(np.ones((2, 3), dtype=bool))
        b = PackedBoolMatrix.pack(np.ones((2, 4), dtype=bool))
        with pytest.raises(ValueError):
            a.bitwise_and(b)
        with pytest.raises(ValueError):
            a.matmul(a)  # inner dims 3 vs 2
        with pytest.raises(TypeError):
            a.matmul(np.ones((3, 2), dtype=bool))
        with pytest.raises(TypeError):
            PackedBoolMatrix.pack(np.ones((2, 3), dtype=np.int64))

    def test_one_round_packed_output(self, paper_faults):
        pi = xy()
        index = LineFaultIndex(paper_faults)
        ses = find_ses_partition(paper_faults, pi)
        des = find_des_partition(paper_faults, pi)
        sr = _reps(ses, paper_faults.mesh)
        dr = _reps(des, paper_faults.mesh)
        dense = one_round_reachability_matrix(index, pi, sr, dr)
        packed = one_round_reachability_matrix(index, pi, sr, dr, packed=True)
        assert isinstance(packed, PackedBoolMatrix)
        assert np.array_equal(packed.unpack(), dense)

    def test_find_reachability_packed_matches_dense(self, paper_faults):
        pi = xy()
        orderings = repeated(pi, 3)
        ses = find_ses_partition(paper_faults, pi)
        des = find_des_partition(paper_faults, pi)
        index = LineFaultIndex(paper_faults)
        kw = dict()
        args = (
            index, orderings, [ses] * 3, [des] * 3,
            [_reps(ses, paper_faults.mesh)] * 3,
            [_reps(des, paper_faults.mesh)] * 3,
        )
        d_dense = find_reachability(*args, packed=False)
        d_packed = find_reachability(*args, packed=True)
        assert d_dense.stats["packed_products"] == 0.0
        assert d_packed.stats["packed_products"] == 1.0
        assert np.array_equal(d_dense.Rk, d_packed.Rk)
        for a, b in zip(d_dense.partial, d_packed.partial):
            assert np.array_equal(a, b)
        assert d_packed.Rk.dtype == np.bool_  # public fields stay dense
        assert d_dense.stats["R1I1_density"] == d_packed.stats["R1I1_density"]


class TestTypedInputErrors:
    """density/_group_rows reject wrong-typed inputs instead of
    silently coercing (regression: packed matrices used to round-trip
    through an unpack copy, floats through np.unique)."""

    def test_density_rejects_non_bool_dense(self):
        with pytest.raises(TypeError):
            density(np.ones((2, 2), dtype=np.float64))
        with pytest.raises(TypeError):
            density(np.ones((2, 2), dtype=np.int32))

    def test_density_accepts_packed_without_unpack(self):
        A = np.eye(130, dtype=bool)
        pa = PackedBoolMatrix.pack(A)
        assert density(pa) == density(A)

    def test_group_rows_rejects_packed(self):
        pa = PackedBoolMatrix.pack(np.ones((4, 4), dtype=bool))
        with pytest.raises(TypeError):
            _group_rows(pa, [0])

    def test_group_rows_rejects_float(self):
        with pytest.raises(TypeError):
            _group_rows(np.ones((4, 2), dtype=np.float64), [0])

    def test_group_rows_still_groups_ints(self):
        arr = np.asarray([[0, 1], [0, 2], [1, 1]])
        groups = _group_rows(arr, [0])
        assert sorted(groups) == [(0,), (1,)]
        assert list(groups[(0,)]) == [0, 1]


class TestBoolMatmulOverflowRegression:
    """Regression for the int8-overflow bug: scipy sparse products keep
    the input dtype, so int8 accumulation wrapped once the inner
    dimension exceeded 127 and silently zeroed true entries."""

    def test_row_sum_256_sparse_rhs(self):
        A = np.ones((1, 300), dtype=bool)
        B = np.zeros((300, 1), dtype=bool)
        B[:256] = True  # int8 row sum would wrap to exactly 0
        assert bool_matmul(A, sp.csr_matrix(B))[0, 0]

    def test_row_sum_200_both_sparse_path(self):
        # Densities ~3% trigger the sparse-sparse path; sums in
        # [128, 255] wrapped to negative int8 (also lost by "> 0").
        n = 4000
        A = np.zeros((4, n), dtype=bool)
        B = np.zeros((n, 4), dtype=bool)
        A[0, :200] = True
        B[:200, 0] = True
        out = bool_matmul(A, B)
        assert out[0, 0]
        assert not out[1, 1]

    def test_large_dense_inner_dimension(self):
        rng = np.random.default_rng(0)
        A = rng.random((8, 1000)) < 0.9
        B = rng.random((1000, 8)) < 0.9
        assert np.array_equal(bool_matmul(A, B), (A @ B) > 0)
