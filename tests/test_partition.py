"""Tests for Find-SES-Partition / Find-DES-Partition
(repro.core.partition)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    find_des_partition,
    find_ses_partition,
    is_des,
    is_partition_of_good_nodes,
    is_ses,
    partition_representatives,
    partition_size_bound,
    partition_size_bound_loose,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import Ordering, ascending, xy

from conftest import faulty_meshes_with_ordering


class TestWorkedExample:
    """The 12x12 example of Section 5 / Figures 3-4."""

    def test_ses_partition_matches_figure3(self, paper_faults):
        ses = find_ses_partition(paper_faults, xy())
        specs = {r.spec() for r in ses}
        assert specs == {
            ("*", 0),
            ((0, 8), 1),
            ((10, 11), 1),
            ("*", (2, 5)),
            ((0, 10), 6),
            ("*", (7, 9)),
            ((0, 9), 10),
            (11, 10),
            ("*", 11),
        }

    def test_des_partition_matches_figure4(self, paper_faults):
        des = find_des_partition(paper_faults, xy())
        specs = {r.spec() for r in des}
        assert specs == {
            ((0, 8), "*"),
            (9, 0),
            (9, (2, 11)),
            (10, (0, 9)),
            (10, 11),
            (11, (0, 5)),
            (11, (7, 11)),
        }

    def test_representatives_match_paper_convention(self, paper_faults):
        ses = find_ses_partition(paper_faults, xy())
        reps = partition_representatives(ses)
        # rep(S) is the minimal corner, e.g. rep((*, [2,5])) = (0, 2).
        by_spec = {r.spec(): rep for r, rep in zip(ses, reps)}
        assert by_spec[("*", (2, 5))] == (0, 2)
        assert by_spec[((10, 11), 1)] == (10, 1)


class TestPartitionProperties:
    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=40, deadline=None)
    def test_ses_partition_is_valid(self, fm):
        """Every output set is an SES (definition-level check) and the
        sets partition the good nodes."""
        faults, pi = fm
        ses = find_ses_partition(faults, pi)
        assert is_partition_of_good_nodes(
            faults, [list(r.nodes()) for r in ses]
        )
        for r in ses:
            assert is_ses(faults, pi, list(r.nodes())), r.spec()

    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=40, deadline=None)
    def test_des_partition_is_valid(self, fm):
        faults, pi = fm
        des = find_des_partition(faults, pi)
        assert is_partition_of_good_nodes(
            faults, [list(r.nodes()) for r in des]
        )
        for r in des:
            assert is_des(faults, pi, list(r.nodes())), r.spec()

    @given(faulty_meshes_with_ordering())
    @settings(max_examples=40, deadline=None)
    def test_rects_are_fault_free(self, fm):
        """The algorithm's rectangles contain no faulty node, so any
        member can serve as representative."""
        faults, pi = fm
        for r in find_ses_partition(faults, pi) + find_des_partition(faults, pi):
            for v in r.nodes():
                assert not faults.node_is_faulty(v)

    @given(faulty_meshes_with_ordering())
    @settings(max_examples=40, deadline=None)
    def test_size_bound_theorem64(self, fm):
        """|Sigma| <= B(d, f) <= (2d-1) f + 1 (Theorem 6.4)."""
        faults, pi = fm
        widths = faults.mesh.widths
        # The Eq. (1) bound is stated for the ascending ordering; under
        # a permuted ordering the widths enter in permuted order.
        perm_widths = tuple(widths[j] for j in pi.perm)
        for part in (find_ses_partition(faults, pi),):
            assert len(part) <= partition_size_bound(perm_widths, faults.f)
            assert len(part) <= partition_size_bound_loose(
                faults.mesh.d, faults.f
            )

    def test_no_faults_single_set(self):
        m = Mesh((5, 7))
        faults = FaultSet(m)
        ses = find_ses_partition(faults, xy())
        assert len(ses) == 1
        assert ses[0].size == 35

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            find_ses_partition(FaultSet(Mesh((4, 4))), ascending(3))


class TestLinkFaults:
    def test_intra_slab_link_fault_forces_recursion(self):
        m = Mesh((6, 6))
        # A link fault along x within row y=2.
        faults = FaultSet(m, (), [((2, 2), (3, 2))])
        ses = find_ses_partition(faults, xy())
        specs = {r.spec() for r in ses}
        # Row 2 must be split at the cut; other rows merge into bands.
        assert ((0, 2), 2) in specs
        assert ((3, 5), 2) in specs

    def test_inter_slab_link_fault_splits_interval(self):
        m = Mesh((6, 6))
        # A link fault along y between rows 2 and 3.
        faults = FaultSet(m, (), [((4, 2), (4, 3))])
        ses = find_ses_partition(faults, xy())
        specs = {r.spec() for r in ses}
        assert ("*", (0, 2)) in specs
        assert ("*", (3, 5)) in specs
        assert len(ses) == 2

    def test_one_dimensional_mesh(self):
        m = Mesh((9,))
        faults = FaultSet(m, [(4,)], [((6,), (7,))])
        ses = find_ses_partition(faults, Ordering((0,)))
        specs = {r.spec() for r in ses}
        assert specs == {((0, 3),), ((5, 6),), ((7, 8),)}
