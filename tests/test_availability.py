"""Tests for the availability model (repro.analysis.availability)."""

import math

import pytest

from repro.analysis import (
    capacity_from_events,
    capacity_timeline,
    effective_utilization,
    young_interval,
)


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(30.0, 6 * 3600) == pytest.approx(
            math.sqrt(2 * 30 * 6 * 3600)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0, 100)
        with pytest.raises(ValueError):
            young_interval(10, -1)

    def test_zero_mtbf_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            young_interval(10, 0)

    def test_negative_mtbf_rejected_with_typed_message(self):
        with pytest.raises(ValueError, match="mtbf=-5"):
            young_interval(10, -5)

    def test_checkpoint_cost_must_be_under_half_mtbf(self):
        # The approximation's validity region is now enforced, not
        # "checked loosely": C >= MTBF/2 is a typed error instead of a
        # meaningless interval.
        with pytest.raises(ValueError, match="mtbf/2"):
            young_interval(50, 100)
        with pytest.raises(ValueError, match="mtbf/2"):
            young_interval(51, 100)
        # Just inside the region is fine.
        assert young_interval(49, 100) == pytest.approx(
            math.sqrt(2 * 49 * 100)
        )


class TestUtilization:
    def test_reliable_machine_near_one(self):
        u = effective_utilization(checkpoint_cost=10, mtbf=1e9)
        assert 0.99 < u <= 1.0

    def test_decreases_with_failure_rate(self):
        us = [
            effective_utilization(checkpoint_cost=30, mtbf=m)
            for m in (1e6, 1e5, 1e4, 1e3)
        ]
        assert us == sorted(us, reverse=True)

    def test_reconfiguration_cost_hurts_slightly(self):
        base = effective_utilization(30, 10_000)
        with_reconf = effective_utilization(30, 10_000, reconfigure_cost=50)
        assert with_reconf < base
        # But the lamb recomputation (seconds) is negligible next to
        # rollback rework (the paper's point about fast reconfiguration).
        assert base - with_reconf < 0.01

    def test_explicit_interval(self):
        u = effective_utilization(10, 1000, interval=100)
        assert u == pytest.approx((100 / 110) * (1 - 50 / 1000))

    def test_bounded(self):
        assert 0.0 <= effective_utilization(10, 21) <= 1.0


class TestCapacityTimeline:
    def test_monotone_decay(self):
        tl = capacity_timeline(
            num_nodes=32768, fault_rate=1.0, horizon=983.0, steps=10,
            lamb_per_fault=0.07,
        )
        fracs = [u for _, u in tl]
        assert fracs[0] == 1.0
        assert fracs == sorted(fracs, reverse=True)
        # At the horizon: 983 faults * 1.07 lost nodes each.
        assert fracs[-1] == pytest.approx(1 - 983 * 1.07 / 32768)

    def test_floor_at_zero(self):
        tl = capacity_timeline(10, 100.0, 10.0, 5, lamb_per_fault=1.0)
        assert tl[-1][1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_timeline(0, 1, 1, 1, 0.1)
        with pytest.raises(ValueError):
            capacity_timeline(10, 1, 1, 1, -0.5)


class TestCapacityFromEvents:
    def test_fault_and_repair_roundtrip(self):
        tl = capacity_from_events(
            100, [(0.0, 1), (1.0, 2), (2.0, -1)], lamb_per_fault=0.0
        )
        assert tl == [(0.0, 0.99), (1.0, 0.97), (2.0, 0.98)]

    def test_lamb_share_applied_and_returned(self):
        tl = capacity_from_events(100, [(0.5, 10), (1.5, -10)],
                                  lamb_per_fault=0.1)
        assert tl[0] == (0.5, pytest.approx(1 - 11 / 100))
        assert tl[1] == (1.5, pytest.approx(1.0))

    def test_clamped_to_unit_interval(self):
        tl = capacity_from_events(4, [(0.0, 10), (1.0, -20)])
        assert tl[0][1] == 0.0
        assert tl[1][1] == 1.0

    def test_empty_events_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            capacity_from_events(10, [])

    def test_unsorted_events_rejected(self):
        # An unsorted list used to be the caller's silent problem; now
        # it is a typed error naming the fix.
        with pytest.raises(ValueError, match="sorted"):
            capacity_from_events(10, [(2.0, 1), (1.0, 1)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            capacity_from_events(10, [(-1.0, 1)])

    def test_bad_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="num_nodes"):
            capacity_from_events(0, [(0.0, 1)])

    def test_negative_lamb_share_rejected(self):
        with pytest.raises(ValueError, match="lamb_per_fault"):
            capacity_from_events(10, [(0.0, 1)], lamb_per_fault=-0.1)
