"""Tests for the availability model (repro.analysis.availability)."""

import math

import pytest

from repro.analysis import capacity_timeline, effective_utilization, young_interval


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(30.0, 6 * 3600) == pytest.approx(
            math.sqrt(2 * 30 * 6 * 3600)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0, 100)
        with pytest.raises(ValueError):
            young_interval(10, -1)


class TestUtilization:
    def test_reliable_machine_near_one(self):
        u = effective_utilization(checkpoint_cost=10, mtbf=1e9)
        assert 0.99 < u <= 1.0

    def test_decreases_with_failure_rate(self):
        us = [
            effective_utilization(checkpoint_cost=30, mtbf=m)
            for m in (1e6, 1e5, 1e4, 1e3)
        ]
        assert us == sorted(us, reverse=True)

    def test_reconfiguration_cost_hurts_slightly(self):
        base = effective_utilization(30, 10_000)
        with_reconf = effective_utilization(30, 10_000, reconfigure_cost=50)
        assert with_reconf < base
        # But the lamb recomputation (seconds) is negligible next to
        # rollback rework (the paper's point about fast reconfiguration).
        assert base - with_reconf < 0.01

    def test_explicit_interval(self):
        u = effective_utilization(10, 1000, interval=100)
        assert u == pytest.approx((100 / 110) * (1 - 50 / 1000))

    def test_bounded(self):
        assert 0.0 <= effective_utilization(10, 21) <= 1.0


class TestCapacityTimeline:
    def test_monotone_decay(self):
        tl = capacity_timeline(
            num_nodes=32768, fault_rate=1.0, horizon=983.0, steps=10,
            lamb_per_fault=0.07,
        )
        fracs = [u for _, u in tl]
        assert fracs[0] == 1.0
        assert fracs == sorted(fracs, reverse=True)
        # At the horizon: 983 faults * 1.07 lost nodes each.
        assert fracs[-1] == pytest.approx(1 - 983 * 1.07 / 32768)

    def test_floor_at_zero(self):
        tl = capacity_timeline(10, 100.0, 10.0, 5, lamb_per_fault=1.0)
        assert tl[-1][1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_timeline(0, 1, 1, 1, 0.1)
        with pytest.raises(ValueError):
            capacity_timeline(10, 1, 1, 1, -0.5)
