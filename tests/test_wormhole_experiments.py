"""Tests for system-level wormhole experiments
(repro.experiments.wormhole_experiments)."""

import numpy as np
import pytest

from repro.core import find_lamb_set
from repro.experiments.wormhole_experiments import (
    CascadeResult,
    injection_rate_sweep,
    lambs_must_route,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import repeated, xy


@pytest.fixture
def small_result():
    mesh = Mesh((8, 8))
    faults = FaultSet(mesh, [(3, 3), (5, 2)])
    return find_lamb_set(faults, repeated(xy(), 2))


class TestInjectionSweep:
    def test_sweep_structure(self, small_result):
        sweep = injection_rate_sweep(
            small_result, rates=(0.2, 1.0), window=100, seed=1
        )
        assert len(sweep.series) == 2
        for s in sweep.series:
            assert s.avg("delivered") > 0
            assert s.avg("avg_latency") > 0
            assert s.avg("throughput") > 0

    def test_deterministic(self, small_result):
        a = injection_rate_sweep(small_result, rates=(0.5,), window=80, seed=2)
        b = injection_rate_sweep(small_result, rates=(0.5,), window=80, seed=2)
        assert a.series[0].values == b.series[0].values

    def test_sim_engine_plumbing_is_cycle_exact(self, small_result):
        # The engine choice rides the pickled payload; every engine is
        # cycle-exact, so the sweep numbers must be identical.
        base = injection_rate_sweep(
            small_result, rates=(0.5,), window=80, seed=2,
            sim_engine="frontier",
        )
        for eng in ("scan", "vector"):
            other = injection_rate_sweep(
                small_result, rates=(0.5,), window=80, seed=2,
                sim_engine=eng,
            )
            assert other.series[0].values == base.series[0].values, eng

    def test_rejects_degenerate_machine(self):
        mesh = Mesh((2, 2))
        faults = FaultSet(mesh, [(0, 0), (0, 1), (1, 0)])
        result = find_lamb_set(faults, repeated(xy(), 2))
        with pytest.raises(ValueError):
            injection_rate_sweep(result)


class TestLambsMustRoute:
    def test_no_lambs_no_cascade(self):
        mesh = Mesh((8, 8))
        faults = FaultSet(mesh, [(4, 4)])
        c = lambs_must_route(faults, repeated(xy(), 2))
        assert c.base_lambs == 0
        assert c.total_sacrificed == 0
        assert c.cascade_factor == 1.0

    def test_cascade_at_least_base(self):
        mesh = Mesh((12, 12))
        faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
        c = lambs_must_route(faults, repeated(xy(), 2))
        assert c.base_lambs == 2
        assert c.total_sacrificed >= c.base_lambs
        assert c.rounds[0] == 2

    def test_corner_cascade(self):
        """Faults that pin a corner: inactivating the corner's lambs
        exposes new unreachable nodes, forcing a genuine cascade."""
        mesh = Mesh((8, 8))
        # Diagonal wall cutting off the corner in two steps.
        faults = FaultSet(mesh, [(2, 0), (1, 1), (0, 2)])
        orderings = repeated(xy(), 2)
        c = lambs_must_route(faults, orderings, max_rounds=20)
        assert c.base_lambs >= 1
        # Each inactivation round can only add sacrifices.
        assert c.total_sacrificed == sum(c.rounds)
