"""Tests for the baseline comparators (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    BlockFaultRouter,
    FaultBlock,
    compare_one_vs_two_rounds,
    inactivated_nodes,
    one_round_lamb,
    rectangularize,
    staircase_blocks,
)
from repro.baselines.block_fault import comb_blocks
from repro.core import is_lamb_set
from repro.mesh import FaultSet, Mesh
from repro.routing import count_turns, path_is_fault_free, repeated, xy


class TestOneRound:
    def test_one_round_lamb_is_valid(self):
        mesh = Mesh((10, 10))
        faults = FaultSet(mesh, [(3, 3), (6, 2), (2, 7)])
        result = one_round_lamb(faults, xy())
        assert is_lamb_set(faults, repeated(xy(), 1), result.lambs)

    def test_comparison_shape(self):
        """Section 3: k=1 needs far more lambs than k=2."""
        rows = compare_one_vs_two_rounds(8, 8, trials=3, d=3, seed=1)
        assert len(rows) == 3
        for r in rows:
            assert r.lambs_k1 >= r.lambs_k2
            assert r.k1_optimum_lower_bound == r.lambs_k1 / 2
        # On average the gap is enormous (hundreds vs ~0).
        assert np.mean([r.lambs_k1 for r in rows]) > 10 * max(
            1, np.mean([r.lambs_k2 for r in rows])
        )


class TestFaultBlocks:
    def test_ring_nodes(self):
        m = Mesh((8, 8))
        b = FaultBlock(3, 4, 3, 4)
        ring = b.ring_nodes(m)
        assert (2, 2) in ring and (5, 5) in ring and (2, 4) in ring
        assert (3, 3) not in ring
        assert len(ring) == 12

    def test_router_rejects_boundary_blocks(self):
        m = Mesh((8, 8))
        with pytest.raises(ValueError):
            BlockFaultRouter(m, [FaultBlock(0, 1, 3, 3)])

    def test_router_rejects_overlapping_rings(self):
        m = Mesh((10, 10))
        with pytest.raises(ValueError):
            BlockFaultRouter(m, [FaultBlock(2, 2, 2, 2), FaultBlock(4, 4, 2, 2)])

    def test_router_rejects_3d(self):
        with pytest.raises(ValueError):
            BlockFaultRouter(Mesh((4, 4, 4)), [])

    def test_routes_are_fault_free(self):
        m = Mesh((16, 16))
        router = BlockFaultRouter(m, staircase_blocks(m, 4, size=2, gap=3))
        faults = router.fault_set()
        rng = np.random.default_rng(0)
        good = faults.good_nodes()
        for _ in range(40):
            v = good[int(rng.integers(len(good)))]
            w = good[int(rng.integers(len(good)))]
            path = router.route(v, w)
            assert path[0] == v and path[-1] == w
            assert path_is_fault_free(faults, path)
            for a, b in zip(path, path[1:]):
                assert m.are_adjacent(a, b)

    def test_rejects_faulty_endpoint(self):
        m = Mesh((8, 8))
        router = BlockFaultRouter(m, [FaultBlock(3, 3, 3, 3)])
        with pytest.raises(ValueError):
            router.route((3, 3), (0, 0))

    def test_comb_turns_grow_linearly(self):
        turns = {}
        for n in (16, 32):
            m = Mesh((n, n))
            router = BlockFaultRouter(m, comb_blocks(m, column=n // 2))
            path = router.route((n // 2, 0), (n // 2, n - 1))
            assert path_is_fault_free(router.fault_set(), path)
            turns[n] = count_turns(path)
        assert turns[32] >= 2 * turns[16] - 4  # ~linear growth
        assert turns[16] >= 8  # far beyond the lamb bound of 3

    def test_comb_requires_margin(self):
        with pytest.raises(ValueError):
            comb_blocks(Mesh((6, 12)), column=5)
        with pytest.raises(ValueError):
            comb_blocks(Mesh((12, 12)), column=5, vgap=1)


class TestInactivation:
    def test_isolated_faults_no_inactivation(self):
        m = Mesh((8, 8))
        faults = FaultSet(m, [(1, 1), (6, 6)])
        res = inactivated_nodes(faults)
        assert res.num_inactivated == 0
        assert len(res.boxes) == 2

    def test_l_shape_fills_bounding_box(self):
        m = Mesh((8, 8))
        faults = FaultSet(m, [(2, 2), (3, 2), (2, 3)])
        res = inactivated_nodes(faults)
        assert res.inactivated == {(3, 3)}

    def test_nearby_boxes_merge_for_ring_gap(self):
        m = Mesh((10, 10))
        # Two single faults with one clear node between: their
        # distance-1 rings share the nodes (4, 2), (4, 3), (4, 4).
        faults = FaultSet(m, [(3, 3), (5, 3)])
        boxes = rectangularize(faults)  # default ring_gap=2
        assert len(boxes) == 1
        assert inactivated_nodes(faults).num_inactivated == 1  # (4,3)
        # Without the ring requirement they stay separate.
        assert len(rectangularize(faults, ring_gap=0)) == 2
        # Diagonal-distance pair at range 3: rings are disjoint.
        far = FaultSet(m, [(3, 3), (6, 6)])
        assert len(rectangularize(far)) == 2

    def test_boxes_cover_all_faults(self, rng):
        m = Mesh((12, 12))
        faults = FaultSet(m, m.random_nodes(15, rng))
        boxes = rectangularize(faults)
        for v in faults.node_faults:
            assert any(
                all(lo <= c <= hi for c, (lo, hi) in zip(v, box))
                for box in boxes
            )

    def test_boxes_are_ring_disjoint(self, rng):
        m = Mesh((12, 12))
        faults = FaultSet(m, m.random_nodes(15, rng))
        boxes = rectangularize(faults, ring_gap=1)
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not all(
                    alo - 1 <= bhi and blo - 1 <= ahi
                    for (alo, ahi), (blo, bhi) in zip(a, b)
                )

    def test_3d_inactivation(self, rng):
        m = Mesh((6, 6, 6))
        faults = FaultSet(m, m.random_nodes(8, rng))
        res = inactivated_nodes(faults)
        assert res.num_inactivated >= 0
        for v in res.inactivated:
            assert not faults.node_is_faulty(v)

    def test_rejects_link_faults(self):
        m = Mesh((6, 6))
        faults = FaultSet(m, (), [((0, 0), (1, 0))])
        with pytest.raises(ValueError):
            rectangularize(faults)
