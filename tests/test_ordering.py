"""Tests for repro.routing.ordering."""

import pytest

from repro.routing import KRoundOrdering, Ordering, ascending, repeated, xy, xyz


class TestOrdering:
    def test_ascending(self):
        assert ascending(3).perm == (0, 1, 2)
        assert ascending(3).is_ascending()

    def test_named(self):
        assert xy() == ascending(2)
        assert xyz() == ascending(3)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Ordering((0, 0, 1))
        with pytest.raises(ValueError):
            Ordering((1, 2, 3))

    def test_reversed(self):
        assert Ordering((0, 1, 2)).reversed() == Ordering((2, 1, 0))
        assert Ordering((1, 0)).reversed() == Ordering((0, 1))

    def test_iteration_and_indexing(self):
        pi = Ordering((2, 0, 1))
        assert list(pi) == [2, 0, 1]
        assert pi[0] == 2
        assert len(pi) == 3

    def test_hashable(self):
        assert len({ascending(2), xy(), Ordering((1, 0))}) == 2


class TestKRoundOrdering:
    def test_repeated(self):
        kr = repeated(xyz(), 2)
        assert kr.k == 2
        assert kr.d == 3
        assert kr.is_uniform()
        assert kr[0] == kr[1] == xyz()

    def test_mixed(self):
        kr = KRoundOrdering([Ordering((0, 1)), Ordering((1, 0))])
        assert not kr.is_uniform()
        assert kr.k == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KRoundOrdering([])

    def test_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            KRoundOrdering([xy(), xyz()])

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            repeated(xy(), 0)

    def test_equality(self):
        assert repeated(xy(), 2) == repeated(xy(), 2)
        assert repeated(xy(), 2) != repeated(xy(), 3)
