"""Sharded control-plane tests: digest partitioning, worker specs,
the router lifecycle (including crash recovery), and loadgen
determinism.

Process spawning is expensive, so the live-router coverage is one
comprehensive lifecycle scenario rather than many small ones; the
deterministic pieces (shard keys, specs, loadgen snapshots) run
in-process.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Any, Dict, Tuple

import pytest

from repro.mesh import FaultSet, Mesh
from repro.routing import ascending, repeated
from repro.service import ReconfigurationCompiler, StaleEpochError
from repro.service.client import RouteQueryClient, raise_typed
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.server import RouteQueryServer
from repro.service.shard import (
    ShardRouter,
    ShardWorkerSpec,
    home_shard,
    shard_key,
)


# ----------------------------------------------------------------------
# Deterministic pieces (no processes)
# ----------------------------------------------------------------------
class TestShardKey:
    def test_key_ignores_the_request_id(self):
        a = {"id": 1, "op": "compile", "faults": {"nodes": [[1, 2]]}}
        b = dict(a, id=999)
        assert shard_key(a) == shard_key(b)

    def test_key_ignores_field_order(self):
        a = {"op": "compile", "faults": {"n": 1}, "id": 0}
        b = {"faults": {"n": 1}, "id": 7, "op": "compile"}
        assert shard_key(a) == shard_key(b)

    def test_distinct_payloads_get_distinct_keys(self):
        keys = {
            shard_key({"op": "compile", "faults": {"n": i}})
            for i in range(50)
        }
        assert len(keys) == 50

    def test_home_shard_is_stable_and_in_range(self):
        payloads = [
            {"op": "compile", "faults": {"n": i}} for i in range(100)
        ]
        for n in (1, 2, 3, 7):
            homes = [home_shard(p, n) for p in payloads]
            assert homes == [home_shard(p, n) for p in payloads]
            assert all(0 <= h < n for h in homes)
        # The partition actually spreads work (not all on one shard).
        assert len({home_shard(p, 4) for p in payloads}) > 1


class TestWorkerSpec:
    def test_spec_is_plain_picklable_data(self):
        spec = ShardWorkerSpec(
            shard_id=2, dims=(8, 8), rounds=2, store_root="/tmp/x"
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.dims == (8, 8)


# ----------------------------------------------------------------------
# Live router lifecycle (spawns real worker processes)
# ----------------------------------------------------------------------
def _survivor_pair(
    faults: FaultSet, compiled: Dict[str, Any]
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    excluded = {
        tuple(v)
        for v in list(compiled["lamb_nodes"]) + list(compiled["quarantined"])
    }
    survivors = [
        v
        for v in faults.mesh.nodes()
        if not faults.node_is_faulty(v) and v not in excluded
    ]
    return survivors[0], survivors[-1]


class TestShardRouterLifecycle:
    def test_replicated_plane_end_to_end(self):
        """Compile → replicated queries → delta → stale epoch →
        worker kill with zero lost replies → respawn and log replay →
        epoch equality across the rotation → graceful stop."""
        faults = FaultSet(Mesh((8, 8)), [(2, 2), (5, 6)])

        async def main() -> Dict[str, Any]:
            router = ShardRouter(dims=(8, 8), rounds=2, num_shards=2)
            await router.start()
            bi = await router.client(codec="binary", default_timeout=60.0)
            nd = await router.client(codec="ndjson", default_timeout=60.0)
            try:
                compiled = await bi.compile(faults, timeout=120.0)
                assert compiled["cache_hit"] is False
                epoch0 = int(compiled["epoch"])
                src, dst = _survivor_pair(faults, compiled)

                # Reads rotate across replicas; both codecs agree.
                for client in (bi, nd, bi, nd):
                    reply = await client.query(src, dst, epoch=epoch0)
                    assert reply["hops"] >= 1

                # A mutation broadcasts: every replica serves the new
                # epoch, and the superseded one is refused typed.
                deltad = await nd.delta(node_faults=[dst], timeout=120.0)
                epoch1 = int(deltad["epoch"])
                assert epoch1 > epoch0
                with pytest.raises(StaleEpochError):
                    await bi.query(src, dst, epoch=epoch0)

                safe = await bi.compile(faults, timeout=120.0)
                assert safe["cache_hit"] is True  # store-backed replica hit

                # Chaos: SIGKILL one worker, then keep querying — the
                # router retries reads on survivors, so nothing is
                # lost while the respawn replays the mutation log.
                epoch2 = int(safe["epoch"])
                assert router.kill_worker(1) is True
                answered = 0
                for _ in range(8):
                    reply = await bi.query(src, (0, 1), epoch=epoch2)
                    answered += 1 if reply["ok"] else 0
                assert answered == 8

                deadline = asyncio.get_running_loop().time() + 60.0
                stats = router.router_stats()
                while (
                    stats["in_sync"] < 2
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.25)
                    stats = router.router_stats()
                assert stats["in_sync"] == 2
                assert stats["respawns"] == 1
                assert stats["epoch_divergences"] == 0

                # Epoch equality across the full rotation, including
                # the respawned replica.
                for _ in range(4):
                    reply = await nd.query(src, (0, 1), epoch=epoch2)
                    raise_typed(reply)
                return router.router_stats()
            finally:
                await bi.close()
                await nd.close()
                await router.stop()

        stats = asyncio.run(main())
        assert stats["shards"] == 2
        # compile + delta + re-compile (a re-activation is a mutation
        # too — it bumps the epoch on every replica).
        assert stats["mutations"] == 3
        assert stats["reads_forwarded"] > 0


# ----------------------------------------------------------------------
# Loadgen determinism (single-process backend, no spawning)
# ----------------------------------------------------------------------
class TestLoadgenDeterminism:
    @staticmethod
    async def _campaign() -> Dict[str, Any]:
        compiler = ReconfigurationCompiler(
            Mesh((8, 8)), repeated(ascending(2), 2)
        )
        server = RouteQueryServer(compiler)
        host, port = await server.start()
        try:
            return await run_loadgen(
                LoadgenConfig(
                    host=host,
                    port=port,
                    codec="ndjson",
                    connections=2,
                    batches=4,
                    batch_size=25,
                    warmup_batches=1,
                    delta_every=2,
                    dims=(8, 8),
                    fault_count=2,
                    fault_seed=3,
                )
            )
        finally:
            await server.stop()

    def test_snapshot_is_seed_deterministic(self):
        report_a = asyncio.run(self._campaign())
        report_b = asyncio.run(self._campaign())
        assert report_a["snapshot"] == report_b["snapshot"]
        assert report_a["probe"] == report_b["probe"]
        snap = report_a["snapshot"]
        assert snap["ok"] == snap["queries"] == 4 * 25
        assert snap["deltas"] >= 1
        # Wall-clock blocks exist but are not part of the contract.
        assert set(report_a) == {
            "snapshot", "probe", "latency", "throughput"
        }
        assert report_a["latency"]["p50_s"] >= 0.0
        assert report_a["throughput"]["qps"] > 0.0
