"""Tests for the closed-form bounds and their tightness
(repro.core.bounds + repro.complexity.adversarial)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity import diagonal_fault_set, prop65_fault_set
from repro.core import (
    dec_partition,
    find_des_partition,
    find_ses_partition,
    one_round_expected_lamb_lower_bound,
    partition_size_bound,
    partition_size_bound_loose,
    sec_partition,
)
from repro.routing import ascending


class TestFormulas:
    def test_paper_value_m3_32(self):
        # Quoted in DESIGN/Fig 25 discussion: B((32,32,32), 983) = 2007.
        assert partition_size_bound((32, 32, 32), 983) == 992 + 31 + 983 + 1

    def test_small_f_equals_loose(self):
        # For small f, every min picks 2f: B = (2d-1) f + 1.
        assert partition_size_bound((32, 32, 32), 5) == partition_size_bound_loose(3, 5)

    def test_one_dimension(self):
        assert partition_size_bound((9,), 4) == 5  # f + 1

    def test_zero_faults(self):
        assert partition_size_bound((5, 5), 0) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            partition_size_bound((5, 5), -1)

    @given(
        st.integers(1, 4),
        st.integers(2, 9),
        st.integers(0, 40),
    )
    @settings(max_examples=50, deadline=None)
    def test_loose_bound_dominates(self, d, n, f):
        widths = (n,) * d
        assert partition_size_bound(widths, f) <= partition_size_bound_loose(d, f)


class TestTheorem31:
    def test_paper_value(self):
        # n = f = 32 gives 2698.67 ("the lower bound ... is 2698").
        assert int(one_round_expected_lamb_lower_bound(32, 32)) == 2698

    def test_requires_f_le_n(self):
        with pytest.raises(ValueError):
            one_round_expected_lamb_lower_bound(8, 9)

    def test_grows_with_f(self):
        vals = [one_round_expected_lamb_lower_bound(32, f) for f in (1, 8, 16, 32)]
        assert vals == sorted(vals)


class TestProposition65:
    """Find-SES-Partition returns exactly B(d, f) sets on the
    constructed fault sets."""

    @pytest.mark.parametrize(
        "d,n,f",
        [
            (1, 9, 3),
            (2, 5, 2),
            (2, 5, 9),     # 2f > n-1 branch
            (2, 7, 3),
            (3, 3, 2),
            (3, 5, 7),
            (3, 5, 30),
            (2, 9, 36),    # max allowed: n^{d-1}(n-1)/2
        ],
    )
    def test_node_fault_tightness(self, d, n, f):
        faults = prop65_fault_set(d, n, f)
        assert faults.f == f
        ses = find_ses_partition(faults, ascending(d))
        assert len(ses) == partition_size_bound((n,) * d, f)

    @pytest.mark.parametrize("d,n,f", [(1, 9, 3), (2, 5, 2), (2, 7, 6), (3, 5, 7)])
    def test_link_fault_tightness(self, d, n, f):
        faults = prop65_fault_set(d, n, f, link_faults=True)
        assert faults.num_link_faults == f and faults.num_node_faults == 0
        ses = find_ses_partition(faults, ascending(d))
        assert len(ses) == partition_size_bound((n,) * d, f)

    def test_rejects_even_n(self):
        with pytest.raises(ValueError):
            prop65_fault_set(2, 6, 2)

    def test_rejects_too_many_faults(self):
        with pytest.raises(ValueError):
            prop65_fault_set(2, 5, 11)


class TestDiagonalTightness:
    """Faults on the diagonal make BOTH the SEC and DEC partitions hit
    (2d - 1) f + 1 exactly (remark after Proposition 6.5)."""

    @pytest.mark.parametrize("d,n,f", [(2, 7, 2), (2, 9, 4), (3, 7, 3)])
    def test_sec_and_dec_sizes(self, d, n, f):
        faults = diagonal_fault_set(d, n, f)
        expected = partition_size_bound_loose(d, f)
        assert len(sec_partition(faults, ascending(d))) == expected
        assert len(dec_partition(faults, ascending(d))) == expected
        # The rectangular algorithm is sandwiched between SEC size and
        # the bound, so it is also exactly at the bound.
        assert len(find_ses_partition(faults, ascending(d))) == expected
        assert len(find_des_partition(faults, ascending(d))) == expected

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            diagonal_fault_set(2, 5, 3)
