"""Tests for repro.mesh.regions (rectangle abbreviations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    Mesh,
    Rect,
    rect_intersection_matrix,
    rects_are_disjoint,
    rects_total_size,
)

from conftest import small_meshes


@st.composite
def rects_in(draw, mesh):
    lo, hi = [], []
    for j in range(mesh.d):
        a = draw(st.integers(0, mesh.widths[j] - 1))
        b = draw(st.integers(a, mesh.widths[j] - 1))
        lo.append(a)
        hi.append(b)
    return Rect(mesh, lo, hi)


@st.composite
def mesh_with_rects(draw, count=2):
    mesh = draw(small_meshes())
    return mesh, [draw(rects_in(mesh)) for _ in range(count)]


class TestRectBasics:
    def test_from_spec(self):
        m = Mesh((12, 12))
        r = Rect.from_spec(m, ["*", (2, 5)])
        assert r.lo == (0, 2)
        assert r.hi == (11, 5)
        assert r.size == 48
        assert r.spec() == ("*", (2, 5))

    def test_from_spec_constant(self):
        m = Mesh((12, 12))
        r = Rect.from_spec(m, [7, "*"])
        assert r.size == 12
        assert r.spec() == (7, "*")

    def test_single(self):
        m = Mesh((5, 5))
        r = Rect.single(m, (2, 3))
        assert r.size == 1
        assert list(r.nodes()) == [(2, 3)]

    def test_invalid_bounds(self):
        m = Mesh((5, 5))
        with pytest.raises(ValueError):
            Rect(m, (3, 0), (2, 0))
        with pytest.raises(ValueError):
            Rect(m, (0, 0), (5, 0))
        with pytest.raises(ValueError):
            Rect(m, (0,), (0,))

    def test_contains(self):
        m = Mesh((10, 10))
        r = Rect(m, (2, 3), (5, 7))
        assert r.contains((2, 3)) and r.contains((5, 7)) and r.contains((4, 5))
        assert not r.contains((1, 5)) and not r.contains((6, 5))

    @given(mesh_with_rects(count=1))
    @settings(max_examples=30, deadline=None)
    def test_size_matches_enumeration(self, mr):
        _, (r,) = mr
        assert r.size == len(list(r.nodes()))

    @given(mesh_with_rects(count=1))
    @settings(max_examples=20, deadline=None)
    def test_nodes_all_contained(self, mr):
        _, (r,) = mr
        assert all(r.contains(v) for v in r.nodes())


class TestIntersection:
    @given(mesh_with_rects(count=2))
    @settings(max_examples=40, deadline=None)
    def test_intersects_matches_enumeration(self, mr):
        _, (a, b) = mr
        truth = bool(set(a.nodes()) & set(b.nodes()))
        assert a.intersects(b) == truth
        assert b.intersects(a) == truth

    @given(mesh_with_rects(count=2))
    @settings(max_examples=40, deadline=None)
    def test_intersection_size(self, mr):
        _, (a, b) = mr
        assert a.intersection_size(b) == len(set(a.nodes()) & set(b.nodes()))

    @given(mesh_with_rects(count=2))
    @settings(max_examples=25, deadline=None)
    def test_intersection_rect(self, mr):
        _, (a, b) = mr
        if a.intersects(b):
            inter = a.intersection(b)
            assert set(inter.nodes()) == set(a.nodes()) & set(b.nodes())
        else:
            with pytest.raises(ValueError):
                a.intersection(b)

    def test_intersection_matrix(self):
        m = Mesh((6, 6))
        rows = [Rect.from_spec(m, ["*", 0]), Rect.from_spec(m, [(0, 2), (1, 3)])]
        cols = [Rect.from_spec(m, [0, "*"]), Rect.from_spec(m, [(4, 5), (4, 5)])]
        I = rect_intersection_matrix(rows, cols)
        assert I.shape == (2, 2)
        assert I[0, 0] and not I[0, 1]
        assert I[1, 0] and not I[1, 1]

    @given(mesh_with_rects(count=4))
    @settings(max_examples=20, deadline=None)
    def test_intersection_matrix_matches_pairwise(self, mr):
        _, rects = mr
        rows, cols = rects[:2], rects[2:]
        I = rect_intersection_matrix(rows, cols, chunk=1)
        for i, r in enumerate(rows):
            for j, c in enumerate(cols):
                assert I[i, j] == r.intersects(c)

    def test_empty_matrix(self):
        assert rect_intersection_matrix([], []).shape == (0, 0)


class TestHelpers:
    def test_total_size(self):
        m = Mesh((4, 4))
        rects = [Rect.from_spec(m, ["*", 0]), Rect.from_spec(m, [0, (1, 2)])]
        assert rects_total_size(rects) == 6

    def test_disjoint(self):
        m = Mesh((4, 4))
        a = Rect.from_spec(m, ["*", 0])
        b = Rect.from_spec(m, ["*", 1])
        assert rects_are_disjoint([a, b])
        assert not rects_are_disjoint([a, a])
