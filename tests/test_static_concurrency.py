"""Tests for the interprocedural concurrency analyzer (REP201-205)."""

import dataclasses
import json
import os

import pytest

from repro.analysis.static.concurrency import (
    CONCURRENCY_FIXTURES,
    ConcurrencyFinding,
    analyze_concurrency,
    analyze_sources,
    apply_baseline,
    load_baseline,
)

REPO = os.path.join(os.path.dirname(__file__), "..")
SRC = os.path.join(REPO, "src")
BASELINE = os.path.join(REPO, "concurrency_baseline.json")


def _ids(report):
    return sorted({f.rule_id for f in report.findings})


# ----------------------------------------------------------------------
# Seeded known-bad fixtures: each must trip its rule by name
# ----------------------------------------------------------------------
class TestSeededFixtures:
    @pytest.mark.parametrize("rule_id", sorted(CONCURRENCY_FIXTURES))
    def test_fixture_trips_its_rule(self, rule_id):
        source = CONCURRENCY_FIXTURES[rule_id]
        report = analyze_sources({f"fx_{rule_id.lower()}.py": source})
        assert rule_id in _ids(report), (
            f"seeded fixture for {rule_id} was not caught: "
            f"{[f.render() for f in report.findings]}"
        )

    def test_lock_order_fixture_emits_cycle_certificate(self):
        report = analyze_sources({"fx.py": CONCURRENCY_FIXTURES["REP201"]})
        assert len(report.cycles) == 1
        cycle = report.cycles[0]
        assert sorted(cycle.locks) == ["fx.a", "fx.b"]
        assert len(cycle.sites) == len(cycle.locks)
        assert all("fx.py:" in site for site in cycle.sites)
        # The certificate is replayable: every consecutive pair is an
        # edge of the reported graph.
        edge_pairs = {(frm, to) for (frm, to, _site) in report.edges}
        ring = list(cycle.locks) + [cycle.locks[0]]
        for frm, to in zip(ring, ring[1:]):
            assert (frm, to) in edge_pairs

    def test_async_blocking_fixture_names_the_call(self):
        report = analyze_sources({"fx.py": CONCURRENCY_FIXTURES["REP202"]})
        (finding,) = [f for f in report.findings if f.rule_id == "REP202"]
        assert "time.sleep()" in finding.message
        assert finding.symbol == "fx.poll"


# ----------------------------------------------------------------------
# REP201 — lock-order cycles
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_call_mediated_cycle(self):
        src = (
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def inner():\n"
            "    with b:\n"
            "        pass\n"
            "def outer():\n"
            "    with a:\n"
            "        inner()\n"
            "def rev():\n"
            "    with b:\n"
            "        with a:\n"
            "            pass\n"
        )
        report = analyze_sources({"m.py": src})
        assert len(report.cycles) == 1
        assert sorted(report.cycles[0].locks) == ["m.a", "m.b"]

    def test_consistent_order_is_acyclic(self):
        src = (
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def one():\n"
            "    with a:\n"
            "        with b:\n"
            "            pass\n"
            "def two():\n"
            "    with a:\n"
            "        with b:\n"
            "            pass\n"
        )
        report = analyze_sources({"m.py": src})
        assert report.cycles == ()
        assert _ids(report) == []

    def test_self_deadlock_on_plain_lock(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        report = analyze_sources({"m.py": src})
        assert len(report.cycles) == 1
        assert report.cycles[0].locks == ("m.C._lock",)

    def test_rlock_reentry_is_legal(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        report = analyze_sources({"m.py": src})
        assert report.cycles == ()

    def test_instance_lock_attrs_cross_class(self):
        src = (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def put(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class Compiler:\n"
            "    def __init__(self, store: Store):\n"
            "        self._lock = threading.Lock()\n"
            "        self.store = store\n"
            "    def compile(self):\n"
            "        with self._lock:\n"
            "            self.store.put()\n"
        )
        report = analyze_sources({"m.py": src})
        pairs = {(frm, to) for (frm, to, _s) in report.edges}
        assert ("m.Compiler._lock", "m.Store._lock") in pairs
        assert report.cycles == ()


# ----------------------------------------------------------------------
# REP202 — blocking calls reachable from async bodies
# ----------------------------------------------------------------------
class TestAsyncBlocking:
    def test_chain_through_sync_helpers(self):
        src = (
            "import time\n"
            "def slow():\n"
            "    time.sleep(0.1)\n"
            "def wrapper():\n"
            "    slow()\n"
            "async def handler():\n"
            "    wrapper()\n"
        )
        report = analyze_sources({"m.py": src})
        (finding,) = report.findings
        assert finding.rule_id == "REP202"
        assert finding.symbol == "m.handler"
        assert "m.wrapper" in finding.message
        assert "time.sleep()" in finding.message

    def test_executor_handoff_escapes(self):
        src = (
            "def slow():\n"
            "    open('/tmp/x')\n"
            "async def handler(loop):\n"
            "    await loop.run_in_executor(None, slow)\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_sync_lock_wait_in_async(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "async def handler():\n"
            "    with _lock:\n"
            "        pass\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == ["REP202"]
        assert "m._lock" in report.findings[0].message

    def test_nonblocking_acquire_not_flagged(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "async def handler():\n"
            "    if _lock.acquire(blocking=False):\n"
            "        _lock.release()\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_local_shadow_of_blocking_module_not_flagged(self):
        src = (
            "async def handler():\n"
            "    requests = []\n"
            "    requests.append(1)\n"
            "    return requests\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_async_callee_reports_at_its_own_body_only(self):
        src = (
            "import time\n"
            "async def inner():\n"
            "    time.sleep(1)\n"
            "async def outer():\n"
            "    await inner()\n"
        )
        report = analyze_sources({"m.py": src})
        findings = [f for f in report.findings if f.rule_id == "REP202"]
        assert [f.symbol for f in findings] == ["m.inner"]


# ----------------------------------------------------------------------
# REP203 — process-worker escapes
# ----------------------------------------------------------------------
class TestProcessEscape:
    def test_lock_argument_flagged(self):
        src = (
            "import threading\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_lock = threading.Lock()\n"
            "def worker(lock):\n"
            "    return 1\n"
            "def run():\n"
            "    pool = ProcessPoolExecutor()\n"
            "    return pool.submit(worker, _lock)\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == ["REP203"]
        assert "m._lock" in report.findings[0].message

    def test_thread_pool_not_flagged(self):
        src = (
            "import threading\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "_lock = threading.Lock()\n"
            "def worker(lock):\n"
            "    return 1\n"
            "def run():\n"
            "    pool = ThreadPoolExecutor()\n"
            "    return pool.submit(worker, _lock)\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_trial_engine_convention_checked_for_any_receiver(self):
        src = (
            "import threading\n"
            "def run(engine):\n"
            "    lock = threading.Lock()\n"
            "    return engine.run_trials(max, [lock])\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == ["REP203"]


# ----------------------------------------------------------------------
# REP204 / REP205
# ----------------------------------------------------------------------
class TestHeldAcrossAwaitAndWrites:
    def test_await_under_module_lock(self):
        report = analyze_sources({"m.py": CONCURRENCY_FIXTURES["REP204"]})
        rep204 = [f for f in report.findings if f.rule_id == "REP204"]
        assert len(rep204) == 1
        assert "m._lock" in rep204[0].message

    def test_caller_holds_lock_convention_not_flagged(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.state = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._apply()\n"
            "    def _apply(self):\n"
            "        self.state = 1\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_mixed_guarded_and_unguarded_write_flagged(self):
        report = analyze_sources({"m.py": CONCURRENCY_FIXTURES["REP205"]})
        (finding,) = report.findings
        assert finding.rule_id == "REP205"
        assert finding.symbol == "m.Cache.sloppy"
        assert "self.hits" in finding.message

    def test_init_writes_exempt(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []


# ----------------------------------------------------------------------
# Report artifact, suppression, baseline
# ----------------------------------------------------------------------
class TestReportAndBaseline:
    def test_artifact_schema_and_determinism(self, tmp_path):
        report = analyze_sources({"fx.py": CONCURRENCY_FIXTURES["REP201"]})
        out = tmp_path / "report.json"
        report.write_artifact(str(out))
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        assert set(payload) == {
            "schema", "modules", "functions", "locks", "lock_edges",
            "cycles", "findings", "clean",
        }
        assert payload["clean"] is False
        report2 = analyze_sources({"fx.py": CONCURRENCY_FIXTURES["REP201"]})
        assert report2.to_dict() == payload

    def test_noqa_suppresses_finding(self):
        src = (
            "import time\n"
            "async def poll():\n"
            "    time.sleep(1)  # noqa: REP202\n"
        )
        report = analyze_sources({"m.py": src})
        assert _ids(report) == []

    def test_baseline_split(self):
        f1 = ConcurrencyFinding("a.py", 1, 0, "REP202", "a.f", "x")
        f2 = ConcurrencyFinding("b.py", 2, 0, "REP203", "b.g", "y")
        entries = [
            {"rule": "REP202", "path": "a.py", "symbol": "a.f",
             "reason": "justified"},
            {"rule": "REP205", "path": "gone.py", "symbol": "gone.h",
             "reason": "rotted"},
        ]
        new, stale = apply_baseline([f1, f2], entries)
        assert new == [f2]
        assert len(stale) == 1 and stale[0]["path"] == "gone.py"

    def test_baseline_schema_validation(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"schema": 1, "suppressions": [
            {"rule": "REP202", "path": "a.py", "symbol": "a.f"},
        ]}))
        with pytest.raises(ValueError, match="reason"):
            load_baseline(str(bad))

    def test_baseline_key_is_line_free(self):
        f = ConcurrencyFinding("a.py", 10, 4, "REP202", "a.f", "msg")
        g = ConcurrencyFinding("a.py", 99, 0, "REP202", "a.f", "moved")
        assert f.baseline_key() == g.baseline_key()


# ----------------------------------------------------------------------
# Acceptance: the repo's own tree
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_tree_is_acyclic_and_baseline_clean(self):
        report = analyze_concurrency([SRC])
        assert report.cycles == (), [c.describe() for c in report.cycles]
        # Baseline paths are committed repo-relative; re-anchor the
        # findings (this test may run from any cwd).
        findings = [
            dataclasses.replace(
                f, path=os.path.relpath(f.path, os.path.abspath(REPO))
            )
            for f in report.findings
        ]
        new, stale = apply_baseline(findings, load_baseline(BASELINE))
        assert new == [], [f.render() for f in new]
        assert stale == [], stale

    def test_tree_locks_inventory(self):
        # The known lock population of the control plane + telemetry;
        # growing it is fine, losing one means the analyzer went blind.
        report = analyze_concurrency([SRC])
        lock_ids = {lock_id for (lock_id, _kind) in report.locks}
        assert {
            "repro.service.compiler.ReconfigurationCompiler._lock",
            "repro.service.compiler.ReconfigurationCompiler._mutation_lock",
            "repro.service.store.ArtifactStore._lock",
            "repro.obs.registry.TelemetryRegistry._lock",
            "repro.obs.metrics.Counter._lock",
            "repro.obs.metrics.Histogram._lock",
        } <= lock_ids

    def test_tree_report_is_deterministic(self):
        a = analyze_concurrency([SRC]).to_dict()
        b = analyze_concurrency([SRC]).to_dict()
        assert a == b


# ----------------------------------------------------------------------
# Regression: the REP202 true positives fixed in this PR stay fixed
# ----------------------------------------------------------------------
class TestFixedTruePositives:
    """``RpcServer.stop`` used to call ``compiler.persist_current()``
    (atomic-rename filesystem writes) directly on the event loop, and
    ``cmd_serve`` wrote its metrics JSON inside ``async def _run``.
    Both now keep blocking I/O off the loop; these tests name the files
    so a reintroduction fails with a pointed message."""

    @pytest.fixture(scope="class")
    def rep202(self):
        report = analyze_concurrency([SRC])
        return [f for f in report.findings if f.rule_id == "REP202"]

    def test_server_stop_persists_via_executor(self, rep202):
        hits = [f for f in rep202 if f.path.endswith("service/server.py")]
        assert hits == [], [f.render() for f in hits]

    def test_cmd_serve_writes_metrics_after_the_loop_exits(self, rep202):
        hits = [f for f in rep202 if f.path.endswith("repro/cli.py")]
        assert hits == [], [f.render() for f in hits]

    def test_old_stop_shape_is_caught(self):
        # The pre-fix pattern, reduced: an async shutdown path calling
        # a sync persist that does filesystem I/O.
        report = analyze_sources({
            "srv.py": (
                "import json\n"
                "class Compiler:\n"
                "    def persist_current(self):\n"
                "        with open('state.json', 'w') as fh:\n"
                "            json.dump({}, fh)\n"
                "class Server:\n"
                "    def __init__(self):\n"
                "        self.compiler = Compiler()\n"
                "    async def stop(self):\n"
                "        self.compiler.persist_current()\n"
            )
        })
        assert [f.rule_id for f in report.findings] == ["REP202"]
        finding = report.findings[0]
        assert finding.symbol == "srv.Server.stop"
        assert "persist_current" in finding.message
        assert "open()" in finding.message

    def test_old_cmd_serve_shape_is_caught(self):
        report = analyze_sources({
            "cli.py": (
                "import asyncio, json\n"
                "def cmd_serve(path):\n"
                "    async def _run():\n"
                "        await asyncio.sleep(0)\n"
                "        with open(path, 'w') as fh:\n"
                "            json.dump({}, fh)\n"
                "    asyncio.run(_run())\n"
            )
        })
        assert [f.rule_id for f in report.findings] == ["REP202"]
        assert report.findings[0].symbol == "cli.cmd_serve._run"
