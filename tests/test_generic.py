"""Tests for the generic-topology lamb solver and torus extension
(repro.core.generic)."""

import numpy as np
import pytest

from repro.core import (
    find_lamb_set,
    full_reach_matrix,
    generic_lamb_set,
    k_round_matrix_from_relation,
    torus_lamb_set,
    torus_reach_matrix,
)
from repro.mesh import FaultSet, Mesh, Torus
from repro.routing import repeated, torus_one_round_reachable, xy


class TestMatrixFromRelation:
    def test_two_round_composition(self):
        # Tiny chain topology: 0 -> 1 -> 2 one-round; 0 reaches 2 in two.
        nodes = [0, 1, 2]
        rel = lambda v, w: w == v or w == v + 1
        R2 = k_round_matrix_from_relation(nodes, [rel, rel])
        assert R2[0, 2] and R2[0, 1] and R2[0, 0]
        assert not R2[2, 0]

    def test_relation_cached_per_round(self):
        calls = []

        def rel(v, w):
            calls.append(1)
            return True

        k_round_matrix_from_relation([0, 1], [rel, rel])
        assert len(calls) == 4  # evaluated once, reused for round 2


class TestGenericLambSet:
    def test_matches_mesh_pipeline(self):
        """On a mesh, the generic singleton-set solver must produce a
        valid lamb set of the same optimal size as general-exact."""
        mesh = Mesh((6, 6))
        faults = FaultSet(mesh, [(2, 1), (4, 4), (1, 3)])
        orderings = repeated(xy(), 2)
        full = full_reach_matrix(faults, orderings)
        good = faults.good_nodes()
        idx = [mesh.index_of(v) for v in good]
        Rk = full[np.ix_(idx, idx)]
        generic_exact = generic_lamb_set(good, Rk, method="general-exact")
        mesh_exact = find_lamb_set(faults, orderings, method="general-exact")
        assert len(generic_exact) == mesh_exact.size

    def test_no_zeros_no_lambs(self):
        nodes = ["a", "b"]
        Rk = np.ones((2, 2), dtype=bool)
        assert generic_lamb_set(nodes, Rk) == set()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            generic_lamb_set([1, 2], np.ones((3, 3), dtype=bool))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            generic_lamb_set([1, 2], np.zeros((2, 2), bool), method="nope")

    def test_weights_steer_choice(self):
        # 0 cannot reach 1 (and vice versa): one of them must go.
        nodes = ["cheap", "dear"]
        Rk = np.array([[True, False], [False, True]])
        out = generic_lamb_set(nodes, Rk, method="general-exact", weights=[1.0, 10.0])
        assert out == {"cheap"}


class TestTorus:
    def test_reach_matrix_diagonal(self):
        t = Torus((5, 5))
        faults = FaultSet(t, [(2, 2)])
        good, Rk = torus_reach_matrix(faults, repeated(xy(), 2))
        assert len(good) == 24
        assert Rk.diagonal().all()

    def test_lamb_set_is_valid_survivor_set(self):
        t = Torus((6, 6))
        rng = np.random.default_rng(9)
        faults = FaultSet(t, t.random_nodes(6, rng))
        orderings = repeated(xy(), 2)
        lambs = torus_lamb_set(faults, orderings)
        good, Rk = torus_reach_matrix(faults, orderings)
        surv = [i for i, v in enumerate(good) if v not in lambs]
        assert Rk[np.ix_(surv, surv)].all()

    def test_wraparound_usually_avoids_lambs(self):
        """A single fault never needs lambs on a torus with 2 rounds
        (wrap links give alternate routes)."""
        t = Torus((6, 6))
        faults = FaultSet(t, [(3, 3)])
        assert torus_lamb_set(faults, repeated(xy(), 2)) == set()

    def test_requires_torus(self):
        m = Mesh((4, 4))
        with pytest.raises(TypeError):
            torus_reach_matrix(FaultSet(m), repeated(xy(), 2))

    def test_torus_vs_mesh_lamb_counts(self):
        """Same fault pattern: the torus (more links) never needs more
        lambs than the mesh when both use exact solving."""
        widths = (6, 6)
        fault_nodes = [(1, 1), (4, 2), (2, 4)]
        orderings = repeated(xy(), 2)
        mesh_res = find_lamb_set(
            FaultSet(Mesh(widths), fault_nodes), orderings, method="general-exact"
        )
        torus_lambs = torus_lamb_set(
            FaultSet(Torus(widths), fault_nodes), orderings, method="general-exact"
        )
        assert len(torus_lambs) <= mesh_res.size
