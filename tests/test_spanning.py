"""Tests for the spanning-tree reachability engine (repro.core.spanning)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    find_des_partition,
    find_lamb_set,
    find_reachability,
    find_reachability_spanning,
    is_lamb_set,
    recommended_engine,
)
from repro.core.spanning import one_round_reachability_matrix_spanning
from repro.mesh import FaultSet, Mesh
from repro.routing import FaultGrids, LineFaultIndex, repeated, xy
from repro.core.partition import find_ses_partition
from repro.core.reachability import one_round_reachability_matrix

from conftest import faulty_meshes_with_ordering


def _reps(rects, mesh):
    if not rects:
        return np.empty((0, mesh.d), dtype=np.int64)
    return np.asarray([r.lo for r in rects], dtype=np.int64)


class TestEngineEquivalence:
    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=25, deadline=None)
    def test_one_round_matrices_agree(self, fm):
        faults, pi = fm
        mesh = faults.mesh
        good = faults.good_nodes()
        if not good:
            return
        nodes = np.asarray(good, dtype=np.int64)
        fast = one_round_reachability_matrix(LineFaultIndex(faults), pi, nodes, nodes)
        slow = one_round_reachability_matrix_spanning(
            FaultGrids(faults), pi, nodes, nodes
        )
        assert np.array_equal(fast, slow)

    @given(faulty_meshes_with_ordering(max_width=6))
    @settings(max_examples=20, deadline=None)
    def test_full_reachability_data_agrees(self, fm):
        faults, pi = fm
        mesh = faults.mesh
        orderings = repeated(pi, 2)
        ses = find_ses_partition(faults, pi)
        des = find_des_partition(faults, pi)
        sreps, dreps = _reps(ses, mesh), _reps(des, mesh)
        fast = find_reachability(
            LineFaultIndex(faults), orderings, [ses] * 2, [des] * 2,
            [sreps] * 2, [dreps] * 2,
        )
        slow = find_reachability_spanning(
            faults, orderings, [ses] * 2, [des] * 2, [sreps] * 2, [dreps] * 2
        )
        assert np.array_equal(fast.Rk, slow.Rk)
        for a, b in zip(fast.round_matrices, slow.round_matrices):
            assert np.array_equal(a, b)
        for a, b in zip(fast.partial, slow.partial):
            assert np.array_equal(a, b)

    def test_lamb_sets_identical(self):
        mesh = Mesh((10, 10))
        faults = FaultSet(mesh, [(3, 2), (7, 7), (2, 8), (5, 5)])
        orderings = repeated(xy(), 2)
        a = find_lamb_set(faults, orderings, engine="lines")
        b = find_lamb_set(faults, orderings, engine="spanning")
        assert a.lambs == b.lambs
        assert is_lamb_set(faults, orderings, b.lambs)

    def test_spanning_rejects_faulty_rep(self):
        mesh = Mesh((4, 4))
        faults = FaultSet(mesh, [(1, 1)])
        with pytest.raises(ValueError):
            one_round_reachability_matrix_spanning(
                FaultGrids(faults), xy(),
                np.asarray([(1, 1)]), np.asarray([(0, 0)]),
            )


class TestEngineSelection:
    def test_small_f_prefers_lines(self):
        from repro.routing import xyz

        mesh = Mesh.square(3, 32)
        faults = FaultSet(mesh, [(0, 0, 0)])
        assert recommended_engine(faults, repeated(xyz(), 2)) == "lines"

    def test_huge_f_on_big_mesh_prefers_spanning(self):
        """Floods win when p is large: the product chain's p^3 beats
        the flood's p * N scaling only while p is moderate."""
        import numpy as np

        from repro.mesh import random_node_faults
        from repro.routing import xyz

        mesh = Mesh.square(3, 32)
        faults = random_node_faults(mesh, 5000, np.random.default_rng(0))
        assert recommended_engine(faults, repeated(xyz(), 2)) == "spanning"

    def test_small_mesh_always_lines(self):
        """On a small mesh p is capped by the good-node count, so the
        product chain stays cheap at any fault density."""
        mesh = Mesh((8, 8))
        faults = FaultSet(mesh, [(x, y) for x in range(8) for y in range(4)])
        assert recommended_engine(faults, repeated(xy(), 2)) == "lines"

    def test_auto_engine_runs(self):
        mesh = Mesh((6, 6))
        faults = FaultSet(mesh, [(2, 2), (4, 1)])
        result = find_lamb_set(faults, repeated(xy(), 2), engine="auto")
        assert is_lamb_set(faults, repeated(xy(), 2), result.lambs)

    def test_bad_engine_rejected(self):
        mesh = Mesh((6, 6))
        with pytest.raises(ValueError):
            find_lamb_set(FaultSet(mesh), repeated(xy(), 2), engine="warp")
