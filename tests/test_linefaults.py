"""Tests for the per-line fault index (repro.routing.linefaults)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import FaultSet, Mesh
from repro.routing import LineFaultIndex

from conftest import faulty_meshes


class TestSegmentBlocked:
    def test_node_fault_blocks_interval(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, [(5, 3)]))
        # Segments along dimension 0 on the line y=3.
        assert idx.segment_blocked(0, (3,), 2, 7)
        assert idx.segment_blocked(0, (3,), 7, 2)
        assert idx.segment_blocked(0, (3,), 5, 5)  # endpoint on fault
        assert not idx.segment_blocked(0, (3,), 0, 4)
        assert not idx.segment_blocked(0, (3,), 6, 9)
        # Other lines are unaffected.
        assert not idx.segment_blocked(0, (4,), 0, 9)

    def test_up_cut_blocks_upward_only(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, (), [((4, 2), (5, 2))]))
        assert idx.segment_blocked(0, (2,), 3, 6)  # crosses 4 -> 5 upward
        assert not idx.segment_blocked(0, (2,), 6, 3)  # downward unaffected
        assert not idx.segment_blocked(0, (2,), 0, 4)  # stops before the cut
        assert not idx.segment_blocked(0, (2,), 5, 9)  # starts after the cut

    def test_down_cut_blocks_downward_only(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, (), [((5, 2), (4, 2))]))
        assert idx.segment_blocked(0, (2,), 6, 3)
        assert not idx.segment_blocked(0, (2,), 3, 6)

    def test_zero_length_segment(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, [(5, 3)]))
        assert not idx.segment_blocked(0, (3,), 4, 4)

    def test_dimension_one_lines(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, [(5, 3)]))
        # Along dimension 1 the line is identified by x=5.
        assert idx.segment_blocked(1, (5,), 0, 9)
        assert not idx.segment_blocked(1, (4,), 0, 9)


class TestBlockingBounds:
    def test_bounds_around_node_fault(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, [(2, 0), (7, 0)]))
        lo, hi = idx.blocking_bounds(0, (0,), 4)
        assert lo == 2.0 and hi == 7.0

    def test_bounds_no_faults(self):
        m = Mesh((10, 10))
        idx = LineFaultIndex(FaultSet(m, [(2, 5)]))
        lo, hi = idx.blocking_bounds(0, (0,), 4)
        assert lo == -math.inf and hi == math.inf

    def test_bounds_with_cuts(self):
        m = Mesh((10, 10))
        faults = FaultSet(m, (), [((3, 0), (4, 0)), ((6, 0), (5, 0))])
        idx = LineFaultIndex(faults)
        lo, hi = idx.blocking_bounds(0, (0,), 5)
        # Downward blocked past the 5->... wait: down cut between 5 and 6
        # blocks moving from 6 down to 5; from position 5 moving down is
        # clear until... the up-cut at 3.5 does not block downward.
        assert lo == -math.inf
        # Upward from 5: blocked by the down cut? No - by nothing until
        # the end of the line; the 3.5 up-cut is below.
        assert hi == math.inf
        lo, hi = idx.blocking_bounds(0, (0,), 3)
        assert hi == 3.5  # cannot move up past the 3->4 cut
        lo, hi = idx.blocking_bounds(0, (0,), 6)
        assert lo == 5.5  # cannot move down past the 6->5 cut

    @given(faulty_meshes(max_d=2))
    @settings(max_examples=40, deadline=None)
    def test_bounds_consistent_with_segment_blocked(self, faults):
        """blocking_bounds(a) must reproduce segment_blocked(a, w) for
        every destination w on the line, for good positions a."""
        idx = LineFaultIndex(faults)
        mesh = faults.mesh
        j = 0
        n = mesh.widths[0]
        for key, _, _ in idx.faulty_lines(j):
            for a in range(n):
                # Reconstruct node coordinates to check goodness.
                node = (a,) + key
                if faults.node_is_faulty(node):
                    continue
                lo, hi = idx.blocking_bounds(j, key, a)
                for w in range(n):
                    expected = idx.segment_blocked(j, key, a, w)
                    assert (w <= lo or w >= hi) == expected, (key, a, w)


class TestIndexStructure:
    def test_faulty_line_counts(self):
        m = Mesh((6, 6, 6))
        faults = FaultSet(m, [(1, 2, 3), (1, 4, 3)])
        idx = LineFaultIndex(faults)
        assert idx.num_faulty_lines(0) == 2  # lines (2,3) and (4,3)
        assert idx.num_faulty_lines(1) == 1  # both faults share line (1,3)
        assert idx.num_faulty_lines(2) == 2

    def test_line_has_obstacle(self):
        m = Mesh((6, 6))
        idx = LineFaultIndex(FaultSet(m, (), [((0, 0), (1, 0))]))
        assert idx.line_has_obstacle(0, (0,))
        assert not idx.line_has_obstacle(0, (1,))
        assert not idx.line_has_obstacle(1, (0,))

    def test_empty_index(self):
        idx = LineFaultIndex(FaultSet(Mesh((4, 4))))
        assert idx.num_faulty_lines(0) == 0
        assert not idx.segment_blocked(0, (0,), 0, 3)
