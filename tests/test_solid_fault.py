"""Tests for solid-fault f-ring routing (repro.baselines.solid_fault)."""

import numpy as np
import pytest

from repro.baselines.solid_fault import SolidFaultRouter, trace_fault_ring
from repro.core import find_lamb_set
from repro.mesh import (
    FaultSet,
    Mesh,
    cross_block,
    l_shaped_block,
    rectangular_block,
    t_shaped_block,
)
from repro.routing import count_turns, max_turns_bound, path_is_fault_free, repeated, xy


class TestRingTracing:
    def test_single_node_ring(self):
        m = Mesh((8, 8))
        ring = trace_fault_ring(m, {(3, 3)})
        assert len(ring) == 8
        # Consecutive ring nodes are mesh neighbors; cycle closes.
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert m.are_adjacent(a, b)

    def test_block_ring_size(self):
        m = Mesh((10, 10))
        region = set(rectangular_block(m, (3, 3), (2, 3)))
        ring = trace_fault_ring(m, region)
        # Perimeter of a 2x3 block ring: 2*(2+3) + 4 = 14.
        assert len(ring) == 14

    def test_cross_ring_is_cycle(self):
        m = Mesh((11, 11))
        region = set(cross_block(m, (5, 5), 2))
        ring = trace_fault_ring(m, region)
        assert len(set(ring)) == len(ring)
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert m.are_adjacent(a, b)
        # Ring nodes are good and adjacent (L-inf) to the region.
        for v in ring:
            assert v not in region

    def test_rejects_boundary_region(self):
        m = Mesh((8, 8))
        with pytest.raises(ValueError):
            trace_fault_ring(m, {(0, 3)})

    def test_rejects_region_with_hole(self):
        m = Mesh((10, 10))
        # A 3x3 donut: ring of the outer boundary is fine but the
        # inner hole makes good node (4,4) have 4 ring... the inner
        # hole node's neighbors are all faulty: the ring is not a
        # simple cycle.
        region = {
            (x, y)
            for x in range(3, 6)
            for y in range(3, 6)
            if (x, y) != (4, 4)
        }
        with pytest.raises(ValueError):
            trace_fault_ring(m, region)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trace_fault_ring(Mesh((8, 8)), set())


class TestSolidRouting:
    @pytest.mark.parametrize(
        "shape",
        [
            lambda m: cross_block(m, (7, 7), 3),
            lambda m: l_shaped_block(m, (5, 5), 5, 4),
            lambda m: t_shaped_block(m, (4, 4), 5, 4),
            lambda m: rectangular_block(m, (6, 6), (3, 4)),
        ],
        ids=["cross", "L", "T", "block"],
    )
    def test_routes_around_solid_shapes(self, shape):
        m = Mesh((16, 16))
        router = SolidFaultRouter(m, shape(m))
        faults = router.fault_set()
        rng = np.random.default_rng(0)
        good = faults.good_nodes()
        for _ in range(60):
            v = good[int(rng.integers(len(good)))]
            w = good[int(rng.integers(len(good)))]
            path = router.route(v, w)
            assert path[0] == v and path[-1] == w
            assert path_is_fault_free(faults, path)
            for a, b in zip(path, path[1:]):
                assert m.are_adjacent(a, b)

    def test_multiple_regions(self):
        m = Mesh((20, 20))
        nodes = cross_block(m, (5, 5), 2) + l_shaped_block(m, (13, 12), 4, 4)
        router = SolidFaultRouter(m, nodes)
        assert len(router.regions) == 2
        path = router.route((0, 5), (19, 14))
        assert path_is_fault_free(router.fault_set(), path)

    def test_rejects_touching_rings(self):
        m = Mesh((16, 16))
        with pytest.raises(ValueError):
            SolidFaultRouter(m, [(4, 4), (7, 4)])  # rings touch at (5..6, 4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            SolidFaultRouter(Mesh((4, 4, 4)), [(1, 1, 1)])

    def test_rejects_faulty_endpoint(self):
        m = Mesh((10, 10))
        router = SolidFaultRouter(m, [(4, 4)])
        with pytest.raises(ValueError):
            router.route((4, 4), (0, 0))

    def test_concave_cavity_progress(self):
        """A C-shaped region whose cavity traps naive greedy routing:
        the ring traversal must still deliver."""
        m = Mesh((14, 14))
        region = []
        for y in range(3, 9):
            region.append((4, y))
            region.append((8, y))
        for x in range(4, 9):
            region.append((x, 8))
        router = SolidFaultRouter(m, region)
        # Route into/through the cavity mouth from above.
        path = router.route((6, 1), (6, 12))
        assert path_is_fault_free(router.fault_set(), path)
        assert path[-1] == (6, 12)

    def test_turns_exceed_lamb_routing(self):
        """Solid-fault detours cost turns; lamb routing stays within
        the k-round bound on the same fault set."""
        m = Mesh((16, 16))
        nodes = cross_block(m, (8, 8), 4)
        router = SolidFaultRouter(m, nodes)
        path = router.route((8, 1), (8, 15))  # straight through the cross
        ring_turns = count_turns(path)
        assert ring_turns > max_turns_bound(2, 2)
        faults = router.fault_set()
        result = find_lamb_set(faults, repeated(xy(), 2))
        # Lamb routing sacrifices nothing or little here and keeps the
        # turn bound (checked structurally elsewhere); the endpoints
        # must remain survivors.
        assert result.is_survivor((8, 1)) and result.is_survivor((8, 15))


class TestSolidRoutingFuzz:
    """Property-style fuzz: random Eden-grown solid regions, random
    endpoint pairs — every route must deliver fault-free."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_solid_regions(self, seed):
        from repro.mesh.patterns import random_walk_cluster

        rng = np.random.default_rng(seed)
        m = Mesh((18, 18))
        # Grow a cluster away from the boundary; retry until its ring
        # is a simple cycle (Eden growth can pinch).
        for attempt in range(20):
            start = (int(rng.integers(4, 14)), int(rng.integers(4, 14)))
            cluster = random_walk_cluster(
                m, int(rng.integers(3, 12)), rng, start=start,
                avoid=[v for v in m.nodes()
                       if min(v) < 2 or max(v) > 15],
            )
            try:
                router = SolidFaultRouter(m, cluster)
                break
            except ValueError:
                continue
        else:
            pytest.skip("no solid region found for this seed")
        faults = router.fault_set()
        good = faults.good_nodes()
        for _ in range(30):
            v = good[int(rng.integers(len(good)))]
            w = good[int(rng.integers(len(good)))]
            path = router.route(v, w)
            assert path[0] == v and path[-1] == w
            assert path_is_fault_free(faults, path)
            for a, b in zip(path, path[1:]):
                assert m.are_adjacent(a, b)
