"""Property tests for canonical config identity and the artifact store.

The stale-cache hazard class: two descriptions of the *same* machine
configuration must produce the *same* digest, or the control plane
serves a stale artifact for a config it believes is new (or recompiles
one it already has).  These tests pin the canonicalization contract:

- fault enumeration order and duplicate fault reports are identity
  no-ops;
- numpy integer coordinates hash like plain ints;
- reconstructing an ordering object (``Ordering`` vs raw permutation
  tuples) does not change the digest;
- genuinely different configs (mesh, faults, k, method, policy) get
  different digests.

Plus the two-tier store mechanics: LRU eviction, disk round-trip,
corruption tolerance.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import FaultSet, Mesh
from repro.routing import KRoundOrdering, Ordering, ascending, repeated
from repro.service import ArtifactStore, canonical_config, config_digest
from repro.service.store import STORE_FORMAT_VERSION

from conftest import faulty_meshes


def _orderings(d: int, k: int = 2) -> KRoundOrdering:
    return repeated(ascending(d), k)


# ----------------------------------------------------------------------
# Digest canonicalization properties
# ----------------------------------------------------------------------
class TestDigestCanonicalization:
    @settings(max_examples=60, deadline=None)
    @given(faulty_meshes(), st.randoms(use_true_random=False))
    def test_fault_order_is_identity_noop(self, faults, rnd):
        """Shuffling the fault enumeration never changes the digest."""
        orderings = _orderings(faults.mesh.d)
        base = config_digest(faults, orderings)

        nodes = list(faults.node_faults)
        links = list(faults.link_faults)
        rnd.shuffle(nodes)
        rnd.shuffle(links)
        shuffled = FaultSet(faults.mesh, nodes, links)
        assert config_digest(shuffled, orderings) == base

    @settings(max_examples=60, deadline=None)
    @given(faulty_meshes())
    def test_duplicate_fault_reports_are_identity_noops(self, faults):
        """Reporting the same fault twice never changes the digest."""
        orderings = _orderings(faults.mesh.d)
        base = config_digest(faults, orderings)
        doubled = FaultSet(
            faults.mesh,
            list(faults.node_faults) + list(faults.node_faults),
            list(faults.link_faults) + list(faults.link_faults),
        )
        assert config_digest(doubled, orderings) == base

    @settings(max_examples=60, deadline=None)
    @given(faulty_meshes())
    def test_numpy_coordinates_hash_like_ints(self, faults):
        """np.int64 coordinates (e.g. from rng.integers) are coerced."""
        orderings = _orderings(faults.mesh.d)
        base = config_digest(faults, orderings)
        np_nodes = [
            tuple(np.int64(x) for x in v) for v in faults.node_faults
        ]
        np_links = [
            (tuple(np.int64(x) for x in u), tuple(np.int64(x) for x in w))
            for (u, w) in faults.link_faults
        ]
        promoted = FaultSet(faults.mesh, np_nodes, np_links)
        assert config_digest(promoted, orderings) == base

    @settings(max_examples=60, deadline=None)
    @given(faulty_meshes())
    def test_ordering_reconstruction_is_identity_noop(self, faults):
        """Rebuilding the ordering objects from their permutations is
        invisible to the digest."""
        d = faults.mesh.d
        orderings = _orderings(d)
        rebuilt = KRoundOrdering(
            [Ordering(tuple(pi.perm)) for pi in orderings]
        )
        assert config_digest(faults, rebuilt) == config_digest(
            faults, orderings
        )

    def test_node_fault_subsumes_its_links(self):
        """A link fault on a faulty node's port is already implied by
        the node fault — reporting it must not change identity."""
        mesh = Mesh((5, 5))
        plain = FaultSet(mesh, [(2, 2)])
        with_link = FaultSet(mesh, [(2, 2)], [((2, 2), (2, 3))])
        orderings = _orderings(2)
        assert config_digest(with_link, orderings) == config_digest(
            plain, orderings
        )

    def test_distinct_configs_get_distinct_digests(self):
        mesh = Mesh((8, 8))
        faults = FaultSet(mesh, [(1, 1), (5, 3)])
        orderings = _orderings(2, k=2)
        base = config_digest(faults, orderings)

        # Different fault set.
        assert config_digest(
            FaultSet(mesh, [(1, 1)]), orderings
        ) != base
        # Different mesh shape (same faults fit in both).
        assert config_digest(
            FaultSet(Mesh((8, 9)), [(1, 1), (5, 3)]), orderings
        ) != base
        # Different k.
        assert config_digest(faults, _orderings(2, k=3)) != base
        # Different per-round permutation.
        yx = KRoundOrdering([Ordering((1, 0))] * 2)
        assert config_digest(faults, yx) != base
        # Different method / policy.
        assert config_digest(faults, orderings, method="greedy") != base
        assert config_digest(faults, orderings, policy="balanced") != base

    def test_link_fault_identity_is_directed(self):
        """(u -> w) and (w -> u) are different machine states."""
        mesh = Mesh((5, 5))
        orderings = _orderings(2)
        fwd = FaultSet(mesh, [], [((1, 1), (1, 2))])
        rev = FaultSet(mesh, [], [((1, 2), (1, 1))])
        assert config_digest(fwd, orderings) != config_digest(
            rev, orderings
        )

    def test_canonical_config_is_json_stable(self):
        """The canonical form itself must be JSON-encodable with
        sorted keys (the digest preimage)."""
        mesh = Mesh((6, 6))
        faults = FaultSet(
            mesh,
            [(np.int64(3), np.int64(4)), (1, 1)],
            [((0, 0), (0, 1))],
        )
        canon = canonical_config(faults, _orderings(2))
        payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
        assert json.loads(payload) == canon
        assert canon["schema"] == STORE_FORMAT_VERSION
        assert canon["node_faults"] == sorted(canon["node_faults"])
        assert canon["link_faults"] == sorted(canon["link_faults"])


# ----------------------------------------------------------------------
# Artifact store mechanics
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_memory_round_trip_and_stats(self):
        store = ArtifactStore()
        assert store.get("ab" * 20) is None
        store.put("ab" * 20, {"x": 1})
        assert store.get("ab" * 20) == {"x": 1}
        stats = store.stats()
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1

    def test_lru_eviction_order(self):
        store = ArtifactStore(max_memory_entries=2)
        store.put("aa" * 20, {"n": 0})
        store.put("bb" * 20, {"n": 1})
        # Touch "aa" so "bb" becomes the LRU victim.
        assert store.get("aa" * 20) == {"n": 0}
        store.put("cc" * 20, {"n": 2})
        assert store.stats()["evictions"] == 1
        assert ("bb" * 20) not in store
        assert store.get("aa" * 20) == {"n": 0}
        assert store.get("cc" * 20) == {"n": 2}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_memory_entries=0)

    def test_disk_round_trip_survives_process_restart(self, tmp_path):
        digest = "cd" * 20
        first = ArtifactStore(root=str(tmp_path))
        first.put(digest, {"table": [1, 2, 3]})
        # A second store over the same root models a fresh process.
        second = ArtifactStore(root=str(tmp_path))
        assert digest in second
        assert second.get(digest) == {"table": [1, 2, 3]}
        assert second.stats()["disk_hits"] == 1
        # Promotion: the next get is served from memory.
        assert second.get(digest) == {"table": [1, 2, 3]}
        assert second.stats()["memory_hits"] == 1

    def test_disk_records_are_sharded_by_digest_prefix(self, tmp_path):
        digest = "ef" * 20
        store = ArtifactStore(root=str(tmp_path))
        store.put(digest, {"v": 1})
        assert (tmp_path / "ef" / f"{digest}.json").exists()
        assert store.digests() == (digest,)

    def test_corrupt_disk_record_is_a_miss_not_a_crash(self, tmp_path):
        digest = "01" * 20
        store = ArtifactStore(root=str(tmp_path))
        store.put(digest, {"v": 1})
        path = tmp_path / "01" / f"{digest}.json"
        path.write_text("{ not json")
        fresh = ArtifactStore(root=str(tmp_path))
        assert fresh.get(digest) is None
        assert fresh.stats()["misses"] == 1

    def test_mismatched_envelope_digest_is_rejected(self, tmp_path):
        """A record copied to the wrong address must not be served."""
        digest = "23" * 20
        wrong = "45" * 20
        store = ArtifactStore(root=str(tmp_path))
        store.put(digest, {"v": 1})
        src = tmp_path / "23" / f"{digest}.json"
        dst = tmp_path / "45"
        dst.mkdir()
        (dst / f"{wrong}.json").write_text(src.read_text())
        fresh = ArtifactStore(root=str(tmp_path))
        assert fresh.get(wrong) is None
        assert fresh.get(digest) == {"v": 1}

    def test_wrong_store_version_is_rejected(self, tmp_path):
        digest = "67" * 20
        store = ArtifactStore(root=str(tmp_path))
        store.put(digest, {"v": 1})
        path = tmp_path / "67" / f"{digest}.json"
        envelope = json.loads(path.read_text())
        envelope["store_version"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))
        fresh = ArtifactStore(root=str(tmp_path))
        assert fresh.get(digest) is None

    def test_writes_are_atomic_no_tmp_litter(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        for i in range(5):
            store.put(f"{i:02d}" * 20, {"n": i})
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Disk-tier garbage collection (prune / pin)
# ----------------------------------------------------------------------
class TestStorePrune:
    @staticmethod
    def _fill(tmp_path, n=6, payload_len=200):
        """A disk store with ``n`` artifacts of distinct ages."""
        store = ArtifactStore(root=str(tmp_path))
        for i in range(n):
            digest = f"{i:02d}" * 20
            store.put(digest, {"n": i, "pad": "x" * payload_len})
            # Distinct mtimes so the LRU order is unambiguous: older
            # index = older artifact.
            path = store._path(digest)
            os.utime(path, (1000.0 + i, 1000.0 + i))
        return store

    def test_disk_bytes_counts_the_tier(self, tmp_path):
        store = self._fill(tmp_path)
        assert store.disk_bytes() > 0
        assert ArtifactStore().disk_bytes() == 0

    def test_prune_evicts_oldest_first(self, tmp_path):
        store = self._fill(tmp_path)
        sizes = {d: os.path.getsize(store._path(d))
                 for d in store.digests()}
        keep_two = sum(sorted(sizes.values())[:2])
        summary = store.prune(keep_two)
        assert summary["removed"] == 4
        assert summary["remaining_bytes"] <= keep_two
        # The two *newest* artifacts survive.
        survivors = set(store.digests())
        assert survivors == {"04" * 20, "05" * 20}

    def test_disk_hit_refreshes_lru_order(self, tmp_path):
        store = self._fill(tmp_path)
        # Touch the oldest artifact through a fresh store (pure disk
        # hit) — it becomes the most recently used and must survive.
        fresh = ArtifactStore(root=str(tmp_path), max_memory_entries=1)
        assert fresh.get("00" * 20) is not None
        fresh.prune(max_bytes=os.path.getsize(fresh._path("00" * 20)))
        assert ("00" * 20) in fresh
        assert ("05" * 20) not in fresh

    def test_memory_hit_refreshes_disk_recency(self, tmp_path):
        """A memory-tier hit must refresh the disk envelope's mtime:
        prune() orders eviction by mtime, and an artifact hot in RAM
        is exactly the one gc must not drop from disk."""
        store = self._fill(tmp_path)
        # "00" is the oldest on disk but every artifact is still in
        # this store's memory tier — the get() below never touches
        # the disk read path.
        assert store.get("00" * 20) is not None
        assert store.memory_hits == 1
        assert store.disk_hits == 0
        store.prune(max_bytes=os.path.getsize(store._path("00" * 20)))
        assert ("00" * 20) in store
        assert ("05" * 20) not in store

    def test_pinned_artifacts_survive_eviction(self, tmp_path):
        store = self._fill(tmp_path)
        store.pin("00" * 20)  # the oldest — first eviction candidate
        summary = store.prune(0)
        assert ("00" * 20) in store
        assert store.pinned() == ("00" * 20,)
        assert summary["protected"] == 1
        # Everything unpinned is gone (budget 0).
        assert set(store.digests()) == {"00" * 20}

    def test_keep_argument_protects_like_a_pin(self, tmp_path):
        store = self._fill(tmp_path)
        store.prune(0, keep=["03" * 20])
        assert set(store.digests()) == {"03" * 20}

    def test_unpin_makes_evictable_again(self, tmp_path):
        store = self._fill(tmp_path)
        store.pin("00" * 20)
        store.unpin("00" * 20)
        store.prune(0)
        assert store.digests() == ()

    def test_pruned_digest_leaves_the_memory_tier_too(self, tmp_path):
        store = self._fill(tmp_path)
        assert store.get("00" * 20) is not None  # hot in memory
        store.prune(0)
        # A pruned artifact must be *gone*, not served from the LRU.
        assert store.get("00" * 20) is None

    def test_prune_rejects_negative_budget(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        with pytest.raises(ValueError):
            store.prune(-1)

    def test_prune_on_memory_only_store_is_a_noop(self):
        store = ArtifactStore()
        store.put("ab" * 20, {"x": 1})
        summary = store.prune(0)
        assert summary["removed"] == 0
        assert store.get("ab" * 20) == {"x": 1}
