"""Tests for routing-table generation (repro.core.routing_table) and
the reconfiguration manager (repro.core.reconfigure)."""

import numpy as np
import pytest

from repro.core import (
    ReconfigurationManager,
    RoutingTable,
    build_routing_table,
    find_lamb_set,
    is_lamb_set,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import max_turns_bound, repeated, xy


@pytest.fixture
def reconfigured():
    mesh = Mesh((10, 10))
    faults = FaultSet(mesh, [(3, 2), (6, 6), (2, 7)])
    orderings = repeated(xy(), 2)
    return find_lamb_set(faults, orderings)


class TestRoutingTable:
    def test_lookup_properties(self, reconfigured):
        table = RoutingTable(reconfigured)
        entry = table.lookup((0, 0), (9, 9))
        assert entry.source == (0, 0) and entry.dest == (9, 9)
        assert 1 <= entry.rounds_used <= 2
        assert len(entry.intermediates) == 1  # k - 1
        assert entry.hops >= 18  # at least the L1 distance
        assert entry.turns <= max_turns_bound(2, 2)

    def test_lookup_caches(self, reconfigured):
        table = RoutingTable(reconfigured)
        a = table.lookup((0, 0), (5, 5))
        b = table.lookup((0, 0), (5, 5))
        assert a is b
        assert len(table) == 1

    def test_rejects_non_survivors(self, reconfigured):
        table = RoutingTable(reconfigured)
        with pytest.raises(ValueError):
            table.lookup((3, 2), (0, 0))  # faulty source
        lamb = next(iter(reconfigured.lambs), None)
        if lamb is not None:
            with pytest.raises(ValueError):
                table.lookup((0, 0), lamb)

    def test_one_round_pairs_use_one_round(self, reconfigured):
        table = RoutingTable(reconfigured)
        # (0,0) -> (1,0): trivially one-round reachable.
        entry = table.lookup((0, 0), (1, 0))
        assert entry.rounds_used == 1
        assert entry.hops == 1

    def test_full_table_small_mesh(self):
        mesh = Mesh((4, 4))
        faults = FaultSet(mesh, [(1, 1)])
        result = find_lamb_set(faults, repeated(xy(), 2))
        table = build_routing_table(result)
        survivors = result.survivors()
        assert len(table) == len(survivors) * (len(survivors) - 1)
        hist = table.round_usage_histogram()
        assert sum(hist.values()) == len(table)
        assert hist.get(1, 0) > hist.get(2, 0)  # most pairs stay 1-round
        assert table.max_turns() <= max_turns_bound(2, 2)

    def test_selected_pairs(self, reconfigured):
        pairs = [((0, 0), (9, 0)), ((9, 9), (0, 9))]
        table = build_routing_table(reconfigured, pairs=pairs)
        assert len(table) == 2


class TestReconfigurationManager:
    def test_epochs_accumulate(self):
        mesh = Mesh((10, 10))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        e1 = mgr.report_faults(node_faults=[(2, 2)])
        e2 = mgr.report_faults(node_faults=[(7, 3), (4, 8)])
        assert e1.index == 0 and e2.index == 1
        assert e2.num_faults == 3
        assert mgr.current is e2
        assert len(mgr.lamb_growth()) == 2

    def test_sticky_lambs_monotone(self):
        mesh = Mesh((12, 12))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        mgr.report_faults(node_faults=[(9, 1), (11, 6), (10, 10)])
        first = set(mgr.current_lambs)
        mgr.report_faults(node_faults=[(2, 2)])
        assert first <= set(mgr.current_lambs)
        assert mgr.monotone_lambs()

    def test_lamb_that_fails_is_dropped(self):
        mesh = Mesh((12, 12))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        mgr.report_faults(node_faults=[(9, 1), (11, 6), (10, 10)])
        lamb = sorted(mgr.current_lambs)[0]
        epoch = mgr.report_faults(node_faults=[lamb])
        assert lamb not in epoch.result.lambs
        assert epoch.result.faults.node_is_faulty(lamb)

    def test_each_epoch_is_valid(self):
        mesh = Mesh((8, 8))
        orderings = repeated(xy(), 2)
        mgr = ReconfigurationManager(mesh, orderings)
        rng = np.random.default_rng(4)
        pool = list(mesh.nodes())
        used = set()
        for _ in range(3):
            new = []
            while len(new) < 2:
                v = pool[int(rng.integers(len(pool)))]
                if v not in used:
                    used.add(v)
                    new.append(v)
            epoch = mgr.report_faults(node_faults=new)
            assert is_lamb_set(epoch.result.faults, orderings, epoch.result.lambs)
            assert epoch.num_survivors == (
                mesh.num_nodes - epoch.result.faults.num_node_faults - epoch.num_lambs
            )

    def test_link_fault_epoch(self):
        mesh = Mesh((8, 8))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        epoch = mgr.report_faults(link_faults=[((2, 2), (3, 2))])
        assert epoch.result.faults.num_link_faults == 1

    def test_rejects_empty_report_after_first(self):
        mesh = Mesh((8, 8))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
        mgr.report_faults(node_faults=[(1, 1)])
        with pytest.raises(ValueError):
            mgr.report_faults()

    def test_non_sticky_mode(self):
        mesh = Mesh((12, 12))
        mgr = ReconfigurationManager(mesh, repeated(xy(), 2), sticky_lambs=False)
        mgr.report_faults(node_faults=[(9, 1), (11, 6), (10, 10)])
        epoch = mgr.report_faults(node_faults=[(0, 0)])
        # Without stickiness the solver is free to pick a fresh set;
        # the result must still be a valid lamb set.
        assert is_lamb_set(
            epoch.result.faults, repeated(xy(), 2), epoch.result.lambs
        )
