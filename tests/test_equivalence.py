"""Tests for exact SEC/DEC partitions (repro.core.equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    dec_partition,
    find_des_partition,
    find_ses_partition,
    is_des,
    is_partition_of_good_nodes,
    is_ses,
    one_round_reach_matrix,
    sec_partition,
)
from repro.mesh import FaultSet, Mesh
from repro.routing import LineFaultIndex, one_round_reachable, xy

from conftest import faulty_meshes_with_ordering


class TestReachMatrix:
    def test_no_faults_all_reachable(self):
        m = Mesh((4, 4))
        R = one_round_reach_matrix(FaultSet(m), xy())
        assert R.all()

    def test_faulty_rows_and_cols_empty(self):
        m = Mesh((4, 4))
        faults = FaultSet(m, [(1, 1)])
        R = one_round_reach_matrix(faults, xy())
        i = m.index_of((1, 1))
        assert not R[i].any()
        assert not R[:, i].any()

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=15, deadline=None)
    def test_matches_scalar(self, fm):
        faults, pi = fm
        mesh = faults.mesh
        R = one_round_reach_matrix(faults, pi)
        idx = LineFaultIndex(faults)
        rng = np.random.default_rng(0)
        nodes = list(mesh.nodes())
        for _ in range(10):
            v = nodes[int(rng.integers(len(nodes)))]
            w = nodes[int(rng.integers(len(nodes)))]
            if faults.node_is_faulty(v) or faults.node_is_faulty(w):
                assert not R[mesh.index_of(v), mesh.index_of(w)]
            else:
                assert R[mesh.index_of(v), mesh.index_of(w)] == one_round_reachable(
                    idx, pi, v, w
                )


class TestSECDEC:
    def test_paper_example_sizes(self, paper_faults):
        """Figures 3-4 show the SEC and DEC partitions: 9 and 7 sets
        (Remark 4.1 says they are the minimum-size partitions; the
        rectangular algorithm happens to achieve them here)."""
        assert len(sec_partition(paper_faults, xy())) == 9
        assert len(dec_partition(paper_faults, xy())) == 7

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=20, deadline=None)
    def test_sec_is_valid_partition_of_ses(self, fm):
        faults, pi = fm
        secs = sec_partition(faults, pi)
        assert is_partition_of_good_nodes(faults, secs)
        for group in secs:
            assert is_ses(faults, pi, group)

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=20, deadline=None)
    def test_dec_is_valid_partition_of_des(self, fm):
        faults, pi = fm
        decs = dec_partition(faults, pi)
        assert is_partition_of_good_nodes(faults, decs)
        for group in decs:
            assert is_des(faults, pi, group)

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=20, deadline=None)
    def test_sec_minimality(self, fm):
        """SEC is the minimum SES partition, so the rectangular
        algorithm can never produce fewer sets (Remark 4.1)."""
        faults, pi = fm
        assert len(sec_partition(faults, pi)) <= len(find_ses_partition(faults, pi))
        assert len(dec_partition(faults, pi)) <= len(find_des_partition(faults, pi))

    @given(faulty_meshes_with_ordering(max_width=5))
    @settings(max_examples=15, deadline=None)
    def test_algorithm_rects_refine_secs(self, fm):
        """Every rectangle of Find-SES-Partition lies inside one SEC
        (equivalence classes are maximal SES's)."""
        faults, pi = fm
        secs = sec_partition(faults, pi)
        node_to_class = {}
        for ci, group in enumerate(secs):
            for v in group:
                node_to_class[v] = ci
        for rect in find_ses_partition(faults, pi):
            classes = {node_to_class[v] for v in rect.nodes()}
            assert len(classes) == 1, rect.spec()


class TestIsSesIsDes:
    def test_empty_set_is_ses(self, paper_faults):
        assert is_ses(paper_faults, xy(), [])
        assert is_des(paper_faults, xy(), [])

    def test_faulty_member_rejected(self, paper_faults):
        assert not is_ses(paper_faults, xy(), [(9, 1)])
        assert not is_des(paper_faults, xy(), [(9, 1)])

    def test_mixed_reachability_not_ses(self, paper_faults):
        # (8, 1) can X-reach (0,1)..(8,1); (10, 1) cannot cross (9,1).
        assert not is_ses(paper_faults, xy(), [(8, 1), (10, 1)])

    def test_partition_checker_rejects_overlap(self, paper_faults):
        groups = [[(0, 0)], [(0, 0)]]
        assert not is_partition_of_good_nodes(paper_faults, groups)
