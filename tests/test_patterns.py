"""Tests for structured fault patterns (repro.mesh.patterns) and the
geometry/partition/link-fault experiment modules."""

import numpy as np
import pytest

from repro.experiments.fault_geometry import fault_geometry_sweep
from repro.experiments.link_faults import link_fault_sweep, link_vs_node_conversion
from repro.experiments.partition_ablation import partition_ablation_sweep
from repro.mesh import FaultSet, Mesh
from repro.mesh.patterns import (
    clustered_faults,
    dust_and_clusters,
    partial_plane_faults,
    random_walk_cluster,
)


class TestRandomWalkCluster:
    def test_connected_and_sized(self, rng):
        mesh = Mesh((10, 10))
        cluster = random_walk_cluster(mesh, 12, rng)
        assert len(cluster) == 12
        assert len(set(cluster)) == 12
        # Connectivity: BFS from the first node covers the cluster.
        nodes = set(cluster)
        seen = {cluster[0]}
        stack = [cluster[0]]
        while stack:
            u = stack.pop()
            for w in mesh.neighbors(u):
                if w in nodes and w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert seen == nodes

    def test_avoid_respected(self, rng):
        mesh = Mesh((8, 8))
        avoid = [(x, y) for x in range(8) for y in range(4, 8)]
        cluster = random_walk_cluster(mesh, 10, rng, start=(0, 0), avoid=avoid)
        assert not set(cluster) & set(avoid)

    def test_impossible_growth(self, rng):
        mesh = Mesh((4, 4))
        avoid = [v for v in mesh.nodes() if v != (0, 0)]
        with pytest.raises(ValueError):
            random_walk_cluster(mesh, 2, rng, start=(0, 0), avoid=avoid)

    def test_bad_size(self, rng):
        with pytest.raises(ValueError):
            random_walk_cluster(Mesh((4, 4)), 0, rng)

    def test_deterministic(self):
        mesh = Mesh((10, 10))
        a = random_walk_cluster(mesh, 8, np.random.default_rng(5))
        b = random_walk_cluster(mesh, 8, np.random.default_rng(5))
        assert a == b


class TestGenerators:
    def test_clustered_faults_count(self, rng):
        mesh = Mesh((12, 12))
        faults = clustered_faults(mesh, 20, 6, rng)
        assert faults.num_node_faults == 20

    def test_partial_plane(self, rng):
        mesh = Mesh((6, 6, 6))
        faults = partial_plane_faults(mesh, 2, 3, 0.5, rng)
        assert faults.num_node_faults == 18  # half of the 36-node plane
        assert all(v[2] == 3 for v in faults.node_faults)

    def test_partial_plane_zero(self, rng):
        assert partial_plane_faults(Mesh((6, 6)), 0, 2, 0.0, rng).is_empty()

    def test_partial_plane_validation(self, rng):
        mesh = Mesh((6, 6))
        with pytest.raises(ValueError):
            partial_plane_faults(mesh, 2, 0, 0.5, rng)
        with pytest.raises(ValueError):
            partial_plane_faults(mesh, 0, 9, 0.5, rng)
        with pytest.raises(ValueError):
            partial_plane_faults(mesh, 0, 0, 1.5, rng)

    def test_dust_and_clusters(self, rng):
        mesh = Mesh((14, 14))
        faults = dust_and_clusters(mesh, dust=5, clusters=2, cluster_size=4, rng=rng)
        assert faults.num_node_faults == 13


class TestExperimentModules:
    def test_fault_geometry_sweep_smoke(self):
        r = fault_geometry_sweep(Mesh.square(2, 10), (4, 8), trials=2)
        assert len(r.series) == 2
        assert {"lambs_uniform", "lambs_clustered"} <= set(r.series[0].values)

    def test_partition_ablation_smoke(self):
        r = partition_ablation_sweep(Mesh.square(2, 8), (2, 5), trials=2)
        for s in r.series:
            assert s.avg("rect_ses") >= s.avg("exact_sec")
            assert s.avg("ses_overhead") >= 1.0

    def test_link_fault_sweep_smoke(self):
        r = link_fault_sweep(Mesh.square(2, 10), percents=(1.0, 3.0), trials=2)
        assert len(r.series) == 2
        assert all(v >= 0 for v in r.column("lambs"))

    def test_link_vs_node_conversion_smoke(self):
        r = link_vs_node_conversion(Mesh.square(2, 10), 6, trials=3)
        s = r.series[0]
        # Conversion can never beat native handling in sacrificed
        # nodes (it has strictly fewer usable resources).
        assert s.avg("sacrificed_native") <= s.avg("sacrificed_converted")
