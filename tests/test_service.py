"""Failure-path and lifecycle tests for the route-query service.

Everything here runs real asyncio TCP on ephemeral localhost ports via
plain ``asyncio.run`` (no pytest-asyncio dependency).  The focus is the
satellite checklist: client-side timeouts, mid-batch epoch bumps,
malformed requests becoming *typed* error replies, and graceful drain
leaving no orphaned compile work behind.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Awaitable, Callable, Dict, List, Tuple

import pytest

from repro.mesh import FaultSet, Mesh
from repro.routing import ascending, repeated, xy
from repro.service import (
    MalformedRequestError,
    ReconfigurationCompiler,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
    StaleEpochError,
)
from repro.service.client import RouteQueryClient, raise_typed
from repro.service.errors import from_wire
from repro.service.server import RouteQueryServer
from repro.service.smoke import default_smoke_faults, serve_smoke


def _base_faults() -> FaultSet:
    return FaultSet(Mesh((8, 8)), [(2, 2), (5, 6)])


def _compiler(**kwargs: Any) -> ReconfigurationCompiler:
    mesh = Mesh((8, 8))
    return ReconfigurationCompiler(mesh, repeated(ascending(2), 2), **kwargs)


def _survivor_pair(
    faults: FaultSet, compiled: Dict[str, Any]
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Two distinct survivor nodes usable as query endpoints."""
    excluded = {
        tuple(v)
        for v in list(compiled["lamb_nodes"]) + list(compiled["quarantined"])
    }
    survivors = [
        v
        for v in faults.mesh.nodes()
        if not faults.node_is_faulty(v) and v not in excluded
    ]
    return survivors[0], survivors[-1]


def _with_service(
    scenario: Callable[
        [RouteQueryClient, RouteQueryServer, ReconfigurationCompiler],
        Awaitable[Any],
    ],
    **compiler_kwargs: Any,
) -> Any:
    """Run ``scenario`` against a live server on an ephemeral port."""

    async def main() -> Any:
        compiler = _compiler(**compiler_kwargs)
        server = RouteQueryServer(compiler)
        host, port = await server.start()
        client = await RouteQueryClient.connect(
            host, port, default_timeout=30.0
        )
        try:
            return await scenario(client, server, compiler)
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Lifecycle: compile -> query -> cache hit -> delta -> stale -> drain
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_end_to_end(self):
        faults = _base_faults()

        async def scenario(client, server, compiler):
            compiled = await client.compile(faults)
            assert compiled["cache_hit"] is False
            assert compiled["source"] == "compiled"
            epoch0 = compiled["epoch"]

            src, dst = _survivor_pair(faults, compiled)
            reply = await client.query(src, dst, epoch=epoch0)
            assert tuple(reply["source"]) == src
            assert tuple(reply["dest"]) == dst
            assert reply["hops"] >= 1

            # Identical compile: a cache hit that keeps the epoch.
            again = await client.compile(faults)
            assert again["cache_hit"] is True
            assert again["source"] == "current"
            assert again["epoch"] == epoch0
            stats = (await client.stats())["stats"]
            assert stats["cache"]["hits"] >= 1
            assert stats["cache"]["misses"] == 1

            # New fault: incremental recompile, epoch bump.
            deltad = await client.delta(node_faults=[src])
            assert deltad["epoch"] > epoch0
            assert deltad["cache_hit"] is False
            assert deltad["incremental"] is True

            # The superseded epoch is refused with a typed error.
            with pytest.raises(StaleEpochError) as exc_info:
                await client.query(dst, src, epoch=epoch0)
            assert exc_info.value.requested == epoch0
            assert exc_info.value.current == deltad["epoch"]
            return deltad["epoch"]

        assert _with_service(scenario) >= 1

    def test_reactivating_a_cached_config_bumps_the_epoch(self):
        """Returning to an old config is a cache hit for the *digest*
        but still a new activation: queries pinned to the previous
        sighting of that config must go stale."""
        compiler = _compiler()
        faults_a = _base_faults()
        art_a, source = compiler.compile(faults_a)
        assert source == "compiled"
        epoch_a = art_a.epoch

        art_b, source = compiler.apply_delta(node_faults=[(0, 7)])
        assert source == "compiled"
        assert art_b.incremental
        assert art_b.epoch == epoch_a + 1

        art_a2, source = compiler.compile(faults_a)
        assert source == "memory"  # digest hit in the live cache
        assert art_a2.digest == art_a.digest
        assert art_a2.epoch == epoch_a + 2  # ... but a fresh activation
        with pytest.raises(StaleEpochError):
            compiler.route((0, 0), (1, 1), epoch=epoch_a)

    def test_graceful_drain_leaves_no_orphaned_compiles(self, tmp_path):
        faults = _base_faults()

        async def main() -> Tuple[int, int]:
            compiler = _compiler()
            compiler.store.root = None  # memory tier only for this run
            server = RouteQueryServer(compiler)
            host, port = await server.start()
            async with await RouteQueryClient.connect(host, port) as client:
                await client.compile(faults, timeout=60.0)
                drain = await client.shutdown()
                assert drain["draining"] is True
            await server.serve_until_shutdown()
            return server.orphaned_compiles, compiler.current_epoch

        orphaned, epoch = asyncio.run(main())
        assert orphaned == 0
        assert epoch == 0

    def test_drain_persists_the_warmed_table(self, tmp_path):
        """After a drain the store holds the current artifact, so the
        next process starts from a cache hit, not a recompile."""
        faults = _base_faults()

        async def main() -> str:
            from repro.service import ArtifactStore

            compiler = _compiler(store=ArtifactStore(root=str(tmp_path)))
            server = RouteQueryServer(compiler)
            host, port = await server.start()
            async with await RouteQueryClient.connect(host, port) as client:
                compiled = await client.compile(faults, timeout=60.0)
                await client.shutdown()
            await server.serve_until_shutdown()
            return compiled["digest"]

        digest = asyncio.run(main())
        fresh = _compiler()
        from repro.service import ArtifactStore

        fresh.store = ArtifactStore(root=str(tmp_path))
        artifact, source = fresh.compile(faults)
        assert source == "store"
        assert artifact.digest == digest


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------
class TestClientTimeout:
    def test_mute_server_trips_the_client_deadline(self):
        """A server that accepts but never replies must surface as a
        typed RequestTimeoutError, not a hang — and the timed-out
        connection is poisoned, because a late reply left in the socket
        buffer would desynchronize every subsequent request."""

        async def main() -> None:
            async def mute(reader, writer):  # swallow requests forever
                try:
                    while await reader.readline():
                        pass
                except (ConnectionError, asyncio.CancelledError):
                    pass

            srv = await asyncio.start_server(mute, "127.0.0.1", 0)
            host, port = srv.sockets[0].getsockname()[:2]
            client = await RouteQueryClient.connect(
                host, port, default_timeout=0.2
            )
            try:
                assert client.broken is False
                with pytest.raises(RequestTimeoutError):
                    await client.ping()
                # The connection is now desynced-by-construction; the
                # client fails fast instead of mismatching reply ids.
                assert client.broken is True
                with pytest.raises(ServiceError, match="desynchronized"):
                    await client.ping()
                with pytest.raises(ServiceError, match="desynchronized"):
                    await client.request_batch([("ping", {})])
            finally:
                await client.close()
            # An explicit per-call deadline overrides the default
            # (fresh connection — the previous one is poisoned).
            fresh = await RouteQueryClient.connect(
                host, port, default_timeout=30.0
            )
            try:
                with pytest.raises(RequestTimeoutError):
                    await fresh.stats(timeout=0.05)
                assert fresh.broken is True
            finally:
                await fresh.close()
                srv.close()
                await srv.wait_closed()

        asyncio.run(main())


class TestMidBatchEpochBump:
    def test_delta_inside_a_batch_staleifies_later_queries(self):
        """One pipelined line: [query@e0, delta, query@e0].  The delta
        bumps the epoch mid-batch, so the trailing query must come back
        as a typed stale-epoch reply while the leading one succeeded."""
        faults = _base_faults()

        async def scenario(client, server, compiler):
            compiled = await client.compile(faults, timeout=60.0)
            epoch0 = compiled["epoch"]
            src, dst = _survivor_pair(faults, compiled)
            query = {
                "source": list(src),
                "dest": list(dst),
                "epoch": epoch0,
            }
            delta = {"node_faults": [[0, 7]], "link_faults": []}
            replies = await client.request_batch(
                [("query", dict(query)), ("delta", delta),
                 ("query", dict(query))],
                timeout=60.0,
            )
            assert replies[0]["ok"] is True
            assert replies[1]["ok"] is True
            assert replies[1]["epoch"] == epoch0 + 1
            assert replies[2]["ok"] is False
            typed = from_wire(replies[2]["error"])
            assert isinstance(typed, StaleEpochError)
            assert typed.requested == epoch0
            assert typed.current == epoch0 + 1
            # Replies preserve request order and ids.
            ids = [r["id"] for r in replies]
            assert ids == sorted(ids)

        _with_service(scenario)


class TestMalformedRequests:
    def test_invalid_json_line_gets_a_typed_reply_with_null_id(self):
        async def scenario(client, server, compiler):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            try:
                writer.write(b"{ this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["id"] is None
                assert reply["ok"] is False
                assert reply["error"]["code"] == "malformed-request"
                # The connection survives a malformed line.
                writer.write(
                    json.dumps({"id": 9, "op": "ping"}).encode() + b"\n"
                )
                await writer.drain()
                pong = json.loads(await reader.readline())
                assert pong["ok"] is True and pong["id"] == 9
            finally:
                writer.close()
                await writer.wait_closed()

        _with_service(scenario)

    def test_typed_error_codes_for_bad_requests(self):
        faults = _base_faults()

        async def scenario(client, server, compiler):
            # Query before any compile: service-unavailable.
            with pytest.raises(ServiceUnavailableError):
                await client.query((0, 0), (1, 1))
            # Unknown op.
            reply = (await client.request_batch([("warp", {})]))[0]
            assert reply["error"]["code"] == "unknown-operation"
            # Missing op.
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(json.dumps({"id": 1}).encode() + b"\n")
            await writer.drain()
            noop = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            assert noop["error"]["code"] == "malformed-request"
            # compile without a fault-set record.
            reply = (await client.request_batch([("compile", {})]))[0]
            assert reply["error"]["code"] == "malformed-request"
            # delta naming no faults.
            await client.compile(faults, timeout=60.0)
            with pytest.raises(MalformedRequestError):
                await client.delta()
            # Non-survivor query endpoint.
            with pytest.raises(MalformedRequestError):
                await client.query((2, 2), (0, 0))  # (2,2) is faulty
            # Bad epoch type.
            reply = (
                await client.request_batch(
                    [("query", {"source": [0, 0], "dest": [1, 1],
                                "epoch": "zero"})]
                )
            )[0]
            assert reply["error"]["code"] == "malformed-request"

        _with_service(scenario)

    def test_delta_without_a_base_config_is_unavailable(self):
        compiler = _compiler()
        with pytest.raises(ServiceUnavailableError):
            compiler.apply_delta(node_faults=[(0, 0)])
        with pytest.raises(MalformedRequestError):
            compiler.compile(FaultSet(Mesh((9, 9)), [(1, 1)]))

    def test_redundant_delta_is_a_current_hit(self):
        compiler = _compiler()
        compiler.compile(_base_faults())
        epoch = compiler.current_epoch
        artifact, source = compiler.apply_delta(node_faults=[(2, 2)])
        assert source == "current"
        assert artifact.epoch == epoch


# ----------------------------------------------------------------------
# Concurrency: mutations serialize, timed-out compiles stay tracked
# ----------------------------------------------------------------------
class TestConcurrentMutations:
    def test_concurrent_deltas_lose_no_faults(self):
        """Two deltas racing from separate threads must serialize: the
        second bases on the first one's activated fault set, so the
        final epoch carries *both* reported faults (the lost-update
        hazard would silently drop one and route through dead
        hardware)."""
        compiler = _compiler()
        compiler.compile(_base_faults())
        errors: List[BaseException] = []

        def report(node: Tuple[int, int]) -> None:
            try:
                compiler.apply_delta(node_faults=[node])
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=report, args=((0, 7),)),
            threading.Thread(target=report, args=((7, 0),)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        current = compiler.current
        assert current is not None
        fault_nodes = set(current.result.faults.node_faults)
        assert {(0, 7), (7, 0)} <= fault_nodes
        # Exactly two activations on top of the base compile.
        assert current.epoch == 2

    def test_escalated_compile_rekeys_under_adopted_discipline(self):
        """When the ladder escalates k -> k+1 the escalated discipline
        is adopted, so the published artifact must be keyed under the
        *post*-escalation digest: an immediately repeated compile of
        the same fault set is a 'current' hit, not a recompile that
        bumps the epoch for an unchanged machine."""
        mesh = Mesh((8, 8))
        compiler = ReconfigurationCompiler(
            mesh,
            repeated(xy(), 1),
            lamb_budget=2,
            max_extra_rounds=1,
        )
        faults = FaultSet(mesh, [(3, 3), (4, 4)])
        first, source = compiler.compile(faults)
        assert source == "compiled"
        assert first.escalated_rounds == 1
        assert compiler.orderings.k == 2  # adopted
        # The artifact's identity matches what the *next* digest of
        # this fault set computes under the adopted orderings.
        assert first.digest == compiler.digest_for(faults)
        again, source = compiler.compile(faults)
        assert source == "current"
        assert again.epoch == first.epoch
        assert compiler.metrics.compiles.value == 1

    def test_timed_out_compile_is_drained_not_orphaned(self):
        """A compile that outlives the request deadline keeps running
        in its worker thread; the client gets a typed request-timeout
        reply, and stop() waits for the thread itself — the epoch it
        activates is not lost and orphaned_compiles stays 0."""
        faults = _base_faults()

        async def main() -> Tuple[int, int, int]:
            compiler = _compiler()
            real_compile = compiler.compile

            def slow_compile(fs: FaultSet):
                time.sleep(0.4)
                return real_compile(fs)

            compiler.compile = slow_compile  # type: ignore[method-assign]
            server = RouteQueryServer(
                compiler, request_timeout=0.05, drain_timeout=30.0
            )
            host, port = await server.start()
            async with await RouteQueryClient.connect(host, port) as client:
                with pytest.raises(RequestTimeoutError):
                    await client.compile(faults, timeout=30.0)
                assert server._inflight_compiles == 1  # thread still alive
            await server.stop()
            return (
                server.orphaned_compiles,
                server._inflight_compiles,
                compiler.current_epoch,
            )

        orphaned, inflight, epoch = asyncio.run(main())
        assert orphaned == 0
        assert inflight == 0
        assert epoch == 0  # the drained thread still activated its epoch

    def test_zero_drain_timeout_still_waits_for_compile_threads(self):
        """Regression: ``drain_timeout=0.0`` used to clamp the drain
        waits to ``asyncio.wait(..., timeout=0.0)`` — "poll once" —
        which reported a compile thread finishing microseconds later
        as orphaned.  The waits now have a small floor."""
        faults = _base_faults()

        async def main() -> int:
            compiler = _compiler()
            real_compile = compiler.compile

            def slow_compile(fs: FaultSet):
                time.sleep(0.03)
                return real_compile(fs)

            compiler.compile = slow_compile  # type: ignore[method-assign]
            server = RouteQueryServer(compiler, drain_timeout=0.0)
            host, port = await server.start()
            client = await RouteQueryClient.connect(
                host, port, default_timeout=30.0
            )
            task = asyncio.create_task(client.compile(faults, timeout=30.0))
            # Drain the moment the compile reaches its worker thread —
            # the deadline is already expired when stop() starts.
            while not server._inflight_compiles:
                await asyncio.sleep(0.005)
            await server.stop()
            await asyncio.gather(task, return_exceptions=True)
            await client.close()
            return server.orphaned_compiles

        assert asyncio.run(main()) == 0


# ----------------------------------------------------------------------
# The acceptance smoke itself, shrunk, twice: determinism contract
# ----------------------------------------------------------------------
class TestSmokeDeterminism:
    def test_smoke_transcript_is_deterministic(self):
        def run() -> Tuple[int, List[str]]:
            lines: List[str] = []
            code = serve_smoke(
                default_smoke_faults(), queries=60, emit=lines.append
            )
            return code, lines

        code_a, lines_a = run()
        code_b, lines_b = run()
        assert code_a == 0
        assert lines_a == lines_b
        assert lines_a[-1] == "smoke OK"

    def test_raise_typed_passthrough(self):
        ok = {"ok": True, "hops": 3}
        assert raise_typed(ok) is ok
        with pytest.raises(StaleEpochError):
            raise_typed(
                {
                    "ok": False,
                    "error": {
                        "code": "stale-epoch",
                        "message": "x",
                        "data": {"requested": 0, "current": 2},
                    },
                }
            )
