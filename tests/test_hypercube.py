"""Tests for hypercube helpers (repro.mesh.hypercube) and their
consistency with the general mesh machinery (Section 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_lamb_set, is_lamb_set
from repro.mesh import (
    FaultSet,
    Mesh,
    address_to_node,
    ecube_route_addresses,
    gray_code_ring,
    hamming_distance,
    node_to_address,
)
from repro.routing import ascending, dor_path, repeated


class TestAddressing:
    @given(st.integers(1, 8), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, d, addr):
        addr = addr % (1 << d)
        assert node_to_address(address_to_node(addr, d)) == addr

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            node_to_address((0, 2))
        with pytest.raises(ValueError):
            address_to_node(16, 4)

    @given(st.integers(1, 8), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_hamming_equals_l1(self, d, a, b):
        a, b = a % (1 << d), b % (1 << d)
        mesh = Mesh.hypercube(d)
        assert hamming_distance(a, b) == mesh.l1_distance(
            address_to_node(a, d), address_to_node(b, d)
        )


class TestEcubeRoute:
    @given(st.integers(1, 7), st.integers(0, 127), st.integers(0, 127))
    @settings(max_examples=30, deadline=None)
    def test_matches_mesh_dor(self, d, a, b):
        """Bit-level e-cube = dimension-ordered routing on M_d(2)."""
        a, b = a % (1 << d), b % (1 << d)
        mesh = Mesh.hypercube(d)
        bit_route = ecube_route_addresses(a, b, d)
        mesh_route = dor_path(
            mesh, ascending(d), address_to_node(a, d), address_to_node(b, d)
        )
        assert [node_to_address(v) for v in mesh_route] == bit_route

    def test_route_length(self):
        assert len(ecube_route_addresses(0b000, 0b111, 3)) == 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            ecube_route_addresses(0, 8, 3)


class TestGrayRing:
    @given(st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_hamiltonian_ring(self, d):
        ring = gray_code_ring(d)
        assert sorted(ring) == list(range(1 << d))
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert hamming_distance(a, b) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            gray_code_ring(0)


class TestLambOnHypercube:
    def test_two_round_ecube_lambs(self):
        """Section 7: the whole pipeline on M_5(2) with faults."""
        mesh = Mesh.hypercube(5)
        faults = FaultSet(
            mesh,
            [address_to_node(a, 5) for a in (0b00101, 0b11010, 0b01111)],
        )
        orderings = repeated(ascending(5), 2)
        result = find_lamb_set(faults, orderings)
        assert is_lamb_set(faults, orderings, result.lambs)
