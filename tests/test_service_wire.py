"""Wire-protocol tests: binary framing, codec negotiation, and the
oversize/truncation edge cases on both codecs.

Everything runs real asyncio TCP on ephemeral localhost ports via
plain ``asyncio.run`` (no pytest-asyncio dependency), mirroring
``test_service.py``.  The load-bearing invariant covered here is
byte-equivalence: for any reply object the binary frame body plus a
newline is byte-identical to the NDJSON reply line, because both
codecs serialize through :func:`repro.service.wire.encode_payload`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Tuple

import pytest

from repro.mesh import FaultSet, Mesh
from repro.routing import ascending, repeated
from repro.service import ReconfigurationCompiler, WireProtocolError
from repro.service import wire
from repro.service.client import RouteQueryClient
from repro.service.server import RouteQueryServer


def _base_faults() -> FaultSet:
    return FaultSet(Mesh((8, 8)), [(2, 2), (5, 6)])


def _compiler(**kwargs: Any) -> ReconfigurationCompiler:
    mesh = Mesh((8, 8))
    return ReconfigurationCompiler(mesh, repeated(ascending(2), 2), **kwargs)


def _with_server(
    scenario: Callable[[RouteQueryServer, str, int], Awaitable[Any]],
    **server_kwargs: Any,
) -> Any:
    """Run ``scenario`` against a live server on an ephemeral port."""

    async def main() -> Any:
        server = RouteQueryServer(_compiler(), **server_kwargs)
        host, port = await server.start()
        try:
            return await scenario(server, host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


def _feed(*chunks: bytes) -> asyncio.StreamReader:
    """A StreamReader preloaded with ``chunks`` then EOF."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


# ----------------------------------------------------------------------
# Framing unit tests (no sockets)
# ----------------------------------------------------------------------
class TestFraming:
    def test_header_layout(self):
        header = wire.frame_header(1234, flags=7)
        assert len(header) == wire.HEADER.size == 12
        magic, version, flags, reserved, length = wire.HEADER.unpack(header)
        assert magic == wire.MAGIC
        assert version == wire.FRAME_VERSION
        assert flags == 7
        assert reserved == 0
        assert length == 1234

    def test_magic_is_not_json_text(self):
        # The negotiation peek relies on the magic never being valid
        # UTF-8 JSON leading bytes.
        with pytest.raises(UnicodeDecodeError):
            wire.MAGIC.decode("utf-8")

    def test_round_trip(self):
        obj = {"id": 3, "op": "ping", "nested": {"a": [1, 2]}}

        async def main():
            reader = _feed(wire.encode_frame(obj))
            body = await wire.read_frame(reader)
            assert body is not None
            assert wire.decode_payload(body) == obj
            # Clean EOF at a frame boundary reads as None.
            assert await wire.read_frame(reader) is None

        asyncio.run(main())

    def test_truncated_body_raises_incomplete_read(self):
        frame = wire.encode_frame({"id": 1, "op": "ping"})

        async def main():
            reader = _feed(frame[:-3])
            with pytest.raises(asyncio.IncompleteReadError):
                await wire.read_frame(reader)

        asyncio.run(main())

    def test_truncated_header_raises_incomplete_read(self):
        async def main():
            reader = _feed(wire.MAGIC + b"\x01")
            with pytest.raises(asyncio.IncompleteReadError):
                await wire.read_frame(reader)

        asyncio.run(main())

    def test_bad_magic_is_unrecoverable(self):
        async def main():
            reader = _feed(b"XXXX" + b"\x00" * 8)
            with pytest.raises(WireProtocolError) as exc_info:
                await wire.read_frame(reader)
            assert exc_info.value.data["recoverable"] is False

        asyncio.run(main())

    def test_bad_version_is_unrecoverable(self):
        header = wire.HEADER.pack(wire.MAGIC, 99, 0, 0, 2)

        async def main():
            reader = _feed(header + b"{}")
            with pytest.raises(WireProtocolError) as exc_info:
                await wire.read_frame(reader)
            assert exc_info.value.data["recoverable"] is False
            assert exc_info.value.data["version"] == 99

        asyncio.run(main())

    def test_oversize_body_is_drained_then_recoverable(self):
        big = wire.encode_frame({"junk": "x" * 500})
        follow = wire.encode_frame({"id": 2, "op": "ping"})

        async def main():
            reader = _feed(big + follow)
            with pytest.raises(WireProtocolError) as exc_info:
                await wire.read_frame(reader, max_frame_bytes=100)
            assert exc_info.value.data["recoverable"] is True
            assert exc_info.value.data["limit_bytes"] == 100
            # The oversized body was consumed in full: the next frame
            # parses from a clean boundary.
            body = await wire.read_frame(reader, max_frame_bytes=100)
            assert wire.decode_payload(body) == {"id": 2, "op": "ping"}

        asyncio.run(main())

    def test_first_header_bytes_prefix(self):
        frame = wire.encode_frame({"id": 9, "op": "ping"})

        async def main():
            # A negotiating server has already consumed the magic.
            reader = _feed(frame[4:])
            body = await wire.read_frame(
                reader, first_header_bytes=frame[:4]
            )
            assert wire.decode_payload(body)["id"] == 9

        asyncio.run(main())


# ----------------------------------------------------------------------
# Golden byte-equivalence: NDJSON line == binary frame body + newline
# ----------------------------------------------------------------------
class TestByteEquivalence:
    def test_encode_payload_is_shared(self):
        for obj in (
            {"id": 0, "ok": True, "pong": True},
            {"id": None, "ok": False, "error": {"code": "x", "data": {}}},
            [{"id": 1, "ok": True}, {"id": 2, "ok": True}],
        ):
            from repro.service.server import _encode

            assert _encode(obj) == wire.encode_payload(obj) + b"\n"

    def test_batch_body_concatenates_individual_bodies(self):
        replies = [{"id": i, "ok": True, "hops": i} for i in range(3)]
        joined = b"[" + b", ".join(
            wire.encode_payload(r) for r in replies
        ) + b"]"
        assert wire.encode_payload(replies) == joined

    def test_live_replies_are_byte_identical_across_codecs(self):
        """Speak both codecs raw against one server and diff the
        reply bytes — the golden test for the shared encoder."""
        # Stateless ops only: a stateful reply (e.g. ``stats``) would
        # differ between the two exchanges because the first one
        # bumps the counters it reports.
        request = {"id": 0, "op": "ping"}
        batch = [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "nonesuch"},
        ]

        async def scenario(server, host, port):
            # NDJSON, raw.
            reader, writer = await asyncio.open_connection(
                host, port, limit=wire.MAX_FRAME_BYTES
            )
            writer.write(json.dumps(request).encode() + b"\n")
            line_single = await reader.readline()
            writer.write(json.dumps(batch).encode() + b"\n")
            line_a = await reader.readline()
            line_b = await reader.readline()
            writer.close()
            await writer.wait_closed()

            # Binary, raw.
            reader, writer = await asyncio.open_connection(
                host, port, limit=wire.MAX_FRAME_BYTES
            )
            writer.write(wire.encode_frame(request))
            frame_single = await wire.read_frame(reader)
            writer.write(wire.encode_frame(batch))
            frame_batch = await wire.read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return line_single, line_a, line_b, frame_single, frame_batch

        line_single, line_a, line_b, frame_single, frame_batch = (
            _with_server(scenario)
        )
        assert frame_single + b"\n" == line_single
        # The batch frame carries one JSON array whose elements are
        # byte-identical to the two NDJSON reply lines.
        assert frame_batch == (
            b"[" + line_a.rstrip(b"\n") + b", "
            + line_b.rstrip(b"\n") + b"]"
        )


# ----------------------------------------------------------------------
# Negotiation and mixed traffic on one listener
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_mixed_codecs_share_one_server(self):
        faults = _base_faults()

        async def scenario(server, host, port):
            nd = await RouteQueryClient.connect(
                host, port, default_timeout=30.0, codec="ndjson"
            )
            bi = await RouteQueryClient.connect(
                host, port, default_timeout=30.0, codec="binary"
            )
            try:
                compiled = await nd.compile(faults, timeout=60.0)
                again = await bi.compile(faults, timeout=60.0)
                assert again["digest"] == compiled["digest"]
                assert again["cache_hit"] is True
                # Pipelined batches on both, same replies.
                pairs = [((0, 0), (7, 7)), ((1, 0), (0, 1))]
                nd_replies = await nd.query_batch(pairs)
                bi_replies = await bi.query_batch(pairs)
                assert nd_replies == bi_replies
                stats = (await bi.stats())["stats"]
                assert stats["counters"]["connections_ndjson"] == 1
                assert stats["counters"]["connections_binary"] == 1
            finally:
                await nd.close()
                await bi.close()

        _with_server(scenario)

    def test_truncated_binary_frame_leaves_server_alive(self):
        async def scenario(server, host, port):
            # Die mid-frame: header promises 1000 bytes, send 10.
            _, writer = await asyncio.open_connection(host, port)
            writer.write(wire.frame_header(1000) + b"x" * 10)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The server must shrug that connection off and keep
            # serving fresh ones.
            client = await RouteQueryClient.connect(
                host, port, codec="binary"
            )
            try:
                reply = await client.ping()
                assert reply["pong"] is True
            finally:
                await client.close()

        _with_server(scenario)


# ----------------------------------------------------------------------
# Oversize messages: typed rejection, surviving connections
# ----------------------------------------------------------------------
class TestOversizeMessages:
    def test_oversize_frame_gets_typed_error_and_connection_survives(self):
        async def scenario(server, host, port):
            client = await RouteQueryClient.connect(
                host, port, default_timeout=30.0, codec="binary"
            )
            try:
                with pytest.raises(WireProtocolError) as exc_info:
                    await client.request("ping", junk="x" * 5000)
                assert exc_info.value.data["recoverable"] is True
                assert exc_info.value.data["limit_bytes"] == 2048
                # The server drained the body: same connection, next
                # request is fine.
                assert client.broken is False
                reply = await client.ping()
                assert reply["pong"] is True
            finally:
                await client.close()

        _with_server(scenario, max_line_bytes=2048)

    def test_oversize_ndjson_line_gets_typed_error_and_resyncs(self):
        async def scenario(server, host, port):
            client = await RouteQueryClient.connect(
                host, port, default_timeout=30.0, codec="ndjson"
            )
            try:
                with pytest.raises(WireProtocolError) as exc_info:
                    await client.request("ping", junk="x" * 5000)
                assert exc_info.value.data["recoverable"] is True
                # The server consumed the whole line before replying,
                # so the client is *not* poisoned.
                assert client.broken is False
                reply = await client.ping()
                assert reply["pong"] is True
                stats = (await client.stats())["stats"]
                assert stats["counters"]["wire_protocol_errors"] == 1
            finally:
                await client.close()

        _with_server(scenario, max_line_bytes=2048)

    def test_oversize_mid_batch_does_not_poison_later_batches(self):
        """A batch over the limit draws one stream-level error; a
        follow-up batch on the same connection works normally."""

        async def scenario(server, host, port):
            client = await RouteQueryClient.connect(
                host, port, default_timeout=30.0, codec="ndjson"
            )
            try:
                big = [("ping", {"junk": "x" * 400}) for _ in range(20)]
                with pytest.raises(WireProtocolError):
                    await client.request_batch(big)
                assert client.broken is False
                small = [("ping", {}) for _ in range(3)]
                replies = await client.request_batch(small)
                assert [r["ok"] for r in replies] == [True] * 3
            finally:
                await client.close()

        _with_server(scenario, max_line_bytes=2048)
