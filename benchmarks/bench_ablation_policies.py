"""Ablation: intermediate-node selection for 2-round routes.

The paper leaves route selection open ("one heuristic is to choose
routes of shortest length, breaking ties randomly", Section 2.3).
This benchmark drives identical traffic through the wormhole simulator
under the three policies; shortest-with-random-ties should deliver
markedly lower latency than the deterministic lexicographic choice,
which funnels all second rounds through the low-coordinate corner.
"""

import numpy as np

from repro.core import find_lamb_set
from repro.mesh import FaultSet, Mesh, random_node_faults
from repro.routing import repeated, xy
from repro.wormhole import WormholeSimulator, uniform_random_traffic

from conftest import run_once


def _sweep(num_messages=150, n=12, f=6):
    mesh = Mesh.square(2, n)
    rng = np.random.default_rng(21)
    faults = random_node_faults(mesh, f, rng)
    orderings = repeated(xy(), 2)
    result = find_lamb_set(faults, orderings)
    endpoints = [v for v in mesh.nodes() if result.is_survivor(v)]
    load = uniform_random_traffic(endpoints, num_messages, rng, num_flits=8)
    stats = {}
    for policy in ("shortest", "first", "random"):
        sim = WormholeSimulator(faults, orderings, policy=policy, seed=3)
        for inj in load:
            sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
        stats[policy] = sim.run(max_cycles=500_000)
    return stats


def test_intermediate_policies(benchmark, show):
    stats = run_once(benchmark, _sweep)
    lines = [f"{'policy':<10} {'cycles':>8} {'avg lat':>9} {'p95 lat':>9} {'thr':>7}"]
    for policy, s in stats.items():
        lines.append(
            f"{policy:<10} {s.cycles:>8} {s.avg_latency:>9.1f} "
            f"{s.p95_latency:>9.1f} {s.throughput_flits_per_cycle:>7.2f}"
        )
    show("\n".join(lines) + "\n")
    for s in stats.values():
        assert s.delivered == s.total_messages
    # Shape: shortest-random-ties beats the lexicographic policy.
    assert stats["shortest"].avg_latency < stats["first"].avg_latency
