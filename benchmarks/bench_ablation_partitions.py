"""Ablation: how much the mesh-size-independent rectangular partition
pays over the (expensive, exact) SEC/DEC partitions.

Expected shape: the rectangular partition is never smaller than the
SEC partition (Remark 4.1: SEC is the minimum SES partition) and the
overhead stays a small constant factor for random faults.
"""

from repro.experiments import default_trials, render_sweep
from repro.experiments.partition_ablation import partition_ablation_sweep
from repro.mesh import Mesh

from conftest import run_once


def test_partition_ablation(benchmark, show):
    result = run_once(
        benchmark, partition_ablation_sweep, Mesh.square(2, 16),
        (2, 4, 8, 16, 24), trials=default_trials(5),
    )
    show(render_sweep(result, aggs=("avg",)))
    for s in result.series:
        assert s.avg("rect_ses") >= s.avg("exact_sec")
        assert s.avg("rect_des") >= s.avg("exact_dec")
        assert s.avg("ses_overhead") < 3.0  # modest constant in practice
