"""Fig. 18: avg & max #lambs vs fault percentage on M3(32).

Paper reference points: at 3% faults (983 faults) the average lamb
count is 67.6 = 0.206% of the 32768 nodes (and < 7% of the faults).
"""

from repro.experiments import default_trials, fig18, render_sweep

from conftest import run_once


def test_fig18(benchmark, show):
    result = run_once(benchmark, fig18, trials=default_trials(3))
    show(render_sweep(result, keys=["lambs"]))
    lambs = result.column("lambs")
    assert lambs[0] <= lambs[-1]
    # Paper: 67.6 average at 3%.  The shape bound: well under 0.5% of N
    # and under 15% of the fault count.
    assert lambs[-1] < 0.005 * 32768
    assert lambs[-1] < 0.15 * 983
    assert 20 <= lambs[-1] <= 160
