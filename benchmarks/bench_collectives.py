"""Collectives on the reconfigured machine: algorithm comparison.

The Blue Gene workload the paper cites ([2], molecular dynamics) is
dominated by global collectives.  This benchmark runs broadcast /
allgather algorithms among the survivors of a faulty 3D mesh and
checks the textbook shapes: binomial trees scale logarithmically in
phases, the naive all-to-one gather pays a hotspot penalty, and the
ring allgather trades phases for bandwidth.
"""

import math

import numpy as np

from repro.collectives import (
    binomial_broadcast,
    binomial_gather,
    linear_alltoone,
    recursive_doubling_allgather,
    ring_allgather,
    run_collective,
)
from repro.core import find_lamb_set
from repro.mesh import Mesh, random_node_faults
from repro.routing import repeated, xyz

from conftest import run_once


def _machine(n=6, f=5, seed=7):
    mesh = Mesh.square(3, n)
    faults = random_node_faults(mesh, f, np.random.default_rng(seed))
    return find_lamb_set(faults, repeated(xyz(), 2))


def _compare(p=32):
    result = _machine()
    participants = result.survivors()[:p]
    rows = {}
    for name, sched in (
        ("binomial bcast", binomial_broadcast(p)),
        ("binomial gather", binomial_gather(p)),
        ("naive all-to-one", linear_alltoone(p)),
        ("rec-dbl allgather", recursive_doubling_allgather(p)),
        ("ring allgather", ring_allgather(p)),
    ):
        rows[name] = (sched.num_phases, run_collective(result, sched, participants))
    return rows


def test_collective_comparison(benchmark, show):
    rows = run_once(benchmark, _compare)
    lines = [f"{'algorithm':<18} {'phases':>7} {'cycles':>8} {'msgs':>6}"]
    for name, (phases, st) in rows.items():
        lines.append(
            f"{name:<18} {phases:>7} {st.makespan_cycles:>8} {st.total_messages:>6}"
        )
    show("\n".join(lines) + "\n")
    p = 32
    assert rows["binomial bcast"][0] == math.ceil(math.log2(p))
    assert rows["ring allgather"][0] == p - 1
    # Phase counts dominate makespan for small payloads: the ring
    # allgather takes far longer than recursive doubling.
    assert (
        rows["ring allgather"][1].makespan_cycles
        > rows["rec-dbl allgather"][1].makespan_cycles
    )
