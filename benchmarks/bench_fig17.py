"""Fig. 17: avg & max #lambs vs fault percentage on M2(32).

Paper reference points: at 3% faults (31 faults) the average lamb
count is 9.59 (0.937% of the 1024 nodes).
"""

from repro.experiments import default_trials, fig17, render_sweep

from conftest import run_once


def test_fig17(benchmark, show):
    result = run_once(benchmark, fig17, trials=default_trials(20))
    show(render_sweep(result, keys=["lambs"]))
    lambs = result.column("lambs")
    # Shape: grows with the fault percentage, small relative to N.
    assert lambs[0] <= lambs[-1]
    assert lambs[-1] < 0.05 * 1024
    # Paper: ~9.6 average lambs at 3%; allow generous trial noise.
    assert 2 <= lambs[-1] <= 30
