"""Ablation: the three WVC reductions of Section 6.3.

Compares Lamb1 (bipartite, optimal WVC via max-flow), Lamb2 with the
Bar-Yehuda-Even 2-approximation, and Lamb2 with exact branch-and-bound
(optimal lamb sets) on random 2D instances: sizes and pipeline times.
Expected shape: bipartite <= 2x optimal (usually equal), local-ratio
<= 2x optimal, exact slowest.
"""

import time

import numpy as np

from repro.core import find_lamb_set
from repro.mesh import Mesh, random_node_faults
from repro.routing import repeated, xy

from conftest import run_once


def _sweep(trials=5, n=12, f=10):
    mesh = Mesh.square(2, n)
    orderings = repeated(xy(), 2)
    rows = []
    for t in range(trials):
        faults = random_node_faults(mesh, f, np.random.default_rng((77, t)))
        sizes, times = {}, {}
        for method in ("bipartite", "general", "general-exact"):
            t0 = time.perf_counter()
            sizes[method] = find_lamb_set(
                faults, orderings, method=method, wvc_max_vertices=120
            ).size
            times[method] = time.perf_counter() - t0
        rows.append((sizes, times))
    return rows


def test_wvc_reductions(benchmark, show):
    rows = run_once(benchmark, _sweep)
    lines = [f"{'trial':>5} {'bipartite':>10} {'local-ratio':>12} {'exact':>6}"]
    for i, (sizes, _) in enumerate(rows):
        lines.append(
            f"{i:>5} {sizes['bipartite']:>10} {sizes['general']:>12} "
            f"{sizes['general-exact']:>6}"
        )
    show("\n".join(lines) + "\n")
    for sizes, _ in rows:
        opt = sizes["general-exact"]
        assert opt <= sizes["bipartite"] <= 2 * opt
        assert opt <= sizes["general"] <= 2 * opt
