"""Fig. 21: avg lamb %% of N vs faults/bisection-width, 2D meshes
n = 32, 64, 128.

Paper shape: the lamb percentage stays small while the fault count is
below the bisection width (ratio <= 1) and degrades beyond it, worse
for smaller meshes (because a fixed ratio means a higher fault
*percentage* on a small mesh).
"""

from repro.experiments import default_trials, fig21, render_sweep

from conftest import run_once


def test_fig21(benchmark, show):
    result = run_once(benchmark, fig21, trials=default_trials(5))
    show(render_sweep(result, aggs=("avg",)))
    first, last = result.series[0], result.series[-1]
    for n in (32, 64, 128):
        key = f"lamb_pct_n{n}"
        # Degradation with the ratio.
        assert first.avg(key) <= last.avg(key)
        # Below the bisection width the damage is tiny.
        assert first.avg(key) < 0.5
    # Smaller meshes degrade worse at high ratio.
    assert last.avg("lamb_pct_n32") >= last.avg("lamb_pct_n128")
