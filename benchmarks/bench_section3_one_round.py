"""Section 3's simulation: one round vs two rounds of XYZ routing.

Paper reference (M3(32), f = 32 random faults): Theorem 3.1 bounds the
expected optimal one-round lamb count by 2698; simulation observed a
~5750 lower bound; with two rounds, 9995 of 10000 trials needed *zero*
lambs and the rest needed one.
"""

from repro.experiments import default_trials, render_sweep, section3_one_vs_two_rounds

from conftest import run_once


def test_section3(benchmark, show):
    result = run_once(
        benchmark, section3_one_vs_two_rounds, trials=default_trials(3)
    )
    show(render_sweep(result, aggs=("avg", "max")))
    s = result.series[0]
    bound = result.meta["theorem31_bound"]
    show(f"Theorem 3.1 lower bound on E[optimal k=1 lambs]: {bound:.0f}\n")
    # Lamb1 is a 2-approximation, so lambs_k1 / 2 lower-bounds the
    # optimum; it must be consistent with Theorem 3.1's order of
    # magnitude (thousands), while k=2 needs (almost) none.
    assert s.avg("lambs_k1") / 2 > 1000
    assert s.avg("lambs_k2") <= 1
    assert s.avg("lambs_k1") > 100 * max(1.0, s.avg("lambs_k2"))
