"""Chaos-engine benchmarks: graceful degradation under live faults.

The paper's model is static — faults are known before routing starts.
These benchmarks time the full deployment loop instead: faults arrive
mid-flight, the machine checkpoints/rolls back, the lamb pipeline
re-runs per epoch, and victims retry with backoff.  Asserted shape:

- every message is accounted for (delivered / retried-then-delivered /
  aborted with a reason) — no silent loss, ever;
- the acceptance scenario (8x8 mesh, >=3 mid-flight fault events)
  completes >=3 reconfiguration epochs without deadlock;
- two identically-seeded runs produce identical fate counts
  (determinism is what makes chaos runs debuggable).
"""

from repro.experiments import fault_arrival_sweep
from repro.wormhole import seeded_chaos_run

from conftest import run_once


def _acceptance_run(seed=7):
    return seeded_chaos_run(
        widths=(8, 8),
        initial_faults=2,
        num_messages=120,
        num_events=3,
        seed=seed,
    )


def test_chaos_acceptance_run(benchmark, show):
    report = run_once(benchmark, _acceptance_run)
    s = report.stats
    show(report.summary() + "\n")
    assert report.fully_accounted
    assert s.delivered + s.aborted == s.total_messages
    assert report.num_epochs >= 3  # epoch 0 + >=2 live events landing
    assert s.delivered > 0


def test_chaos_determinism(benchmark, show):
    first = _acceptance_run()
    second = run_once(benchmark, _acceptance_run)
    show(
        f"run 1: {first.stats.delivered} delivered / "
        f"{first.stats.aborted} aborted / {first.num_epochs} epochs\n"
        f"run 2: {second.stats.delivered} delivered / "
        f"{second.stats.aborted} aborted / {second.num_epochs} epochs\n"
    )
    assert first.stats == second.stats
    assert first.num_epochs == second.num_epochs
    assert first.quarantined == second.quarantined


def _arrival_sweep():
    return fault_arrival_sweep(
        event_counts=(0, 2, 4),
        trials=2,
        num_messages=60,
        max_cycles=200_000,
    )


def test_fault_arrival_sweep(benchmark, show):
    sweep = run_once(benchmark, _arrival_sweep)
    lines = [
        f"{'events':>6} {'delivered':>9} {'retried':>8} "
        f"{'aborted':>8} {'epochs':>7} {'latency':>8} {'total':>8}"
    ]
    for s in sweep.series:
        lines.append(
            f"{s.x:>6} {s.avg('delivered'):>9.1f} "
            f"{s.avg('retried_delivered'):>8.1f} "
            f"{s.avg('aborted'):>8.1f} {s.avg('epochs'):>7.1f} "
            f"{s.avg('avg_latency'):>8.1f} "
            f"{s.avg('avg_total_latency'):>8.1f}"
        )
    show("\n".join(lines) + "\n")
    # Full accounting pins at 1.0 at every fault-arrival intensity.
    for s in sweep.series:
        assert s.avg("accounted") == 1.0
    # With zero events there is exactly the initial epoch and no retries.
    calm = sweep.series[0]
    assert calm.avg("epochs") == 1.0
    assert calm.avg("retried_delivered") == 0.0
    # Total latency (incl. abort/backoff/retry time) dominates plain
    # final-attempt latency once faults actually arrive.
    for s in sweep.series:
        assert s.avg("avg_total_latency") >= s.avg("avg_latency")
