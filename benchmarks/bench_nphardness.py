"""Section 9's reduction, exercised end to end.

Builds (3,2)-lamb instances from small vertex cover instances, runs
the lamb pipeline on the gadget meshes, and recovers valid vertex
covers — the executable content of Theorem 9.1.
"""

from repro.complexity import (
    build_lamb_instance,
    cover_to_lamb_set,
    recover_vertex_cover,
)
from repro.core import find_lamb_set, is_lamb_set
from repro.graphs import exact_min_vertex_cover, is_vertex_cover
from repro.routing import repeated, xyz

from conftest import run_once

GRAPHS = {
    "triangle K3": (3, [(0, 1), (1, 2), (0, 2)]),
    "path P4": (4, [(0, 1), (1, 2), (2, 3)]),
    "star S3": (4, [(0, 1), (0, 2), (0, 3)]),
}


def _run_all():
    rows = []
    for name, (n, edges) in GRAPHS.items():
        inst = build_lamb_instance(n, edges)
        orderings = repeated(xyz(), 2)
        result = find_lamb_set(inst.faults, orderings)
        cover = recover_vertex_cover(inst, result.lambs)
        opt = exact_min_vertex_cover(n, edges)
        opt_lambs = cover_to_lamb_set(inst, opt)
        rows.append(
            (name, inst.n, inst.faults.f, result.size, sorted(cover),
             sorted(opt), is_vertex_cover(edges, cover),
             is_lamb_set(inst.faults, orderings, opt_lambs))
        )
    return rows


def test_vc_reduction(benchmark, show):
    rows = run_once(benchmark, _run_all)
    lines = [
        f"{'graph':<12} {'mesh n':>6} {'faults':>7} {'|lambs|':>8} "
        f"{'recovered cover':<18} {'optimal VC':<12}"
    ]
    for name, n, f, lam, cov, opt, ok_cov, ok_lam in rows:
        lines.append(
            f"{name:<12} {n:>6} {f:>7} {lam:>8} {str(cov):<18} {str(opt):<12}"
        )
    show("\n".join(lines) + "\n")
    for name, n, f, lam, cov, opt, ok_cov, ok_lam in rows:
        assert ok_cov, f"{name}: recovered set is not a vertex cover"
        assert ok_lam, f"{name}: optimal cover did not yield a lamb set"
