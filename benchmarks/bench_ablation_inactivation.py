"""Ablation: node inactivation (rectangularization) vs lamb nodes.

Section 1 poses the open question of how many nodes inactivation-based
rectangularization costs compared to lambs.  Empirical answer: in the
paper's 3D regime the lamb approach wins by orders of magnitude (boxes
chain-merge); on 2D meshes pushed past their bisection width the
comparison flips.
"""

import numpy as np

from repro.baselines import inactivated_nodes
from repro.core import find_lamb_set
from repro.mesh import FaultSet, Mesh
from repro.routing import ascending, repeated

from conftest import run_once


def _sweep(trials=3):
    rows = []
    cases = [
        (3, 16, (20, 41, 82, 123)),   # 0.5% .. 3% of 4096
        (2, 32, (10, 31, 60)),        # up to ~2x bisection width
    ]
    rng = np.random.default_rng(11)
    for d, n, fs in cases:
        mesh = Mesh.square(d, n)
        orderings = repeated(ascending(d), 2)
        for f in fs:
            inact, lambs = [], []
            for _ in range(trials):
                faults = FaultSet(mesh, mesh.random_nodes(f, rng))
                inact.append(inactivated_nodes(faults).num_inactivated)
                lambs.append(find_lamb_set(faults, orderings).size)
            rows.append((d, n, f, float(np.mean(inact)), float(np.mean(lambs))))
    return rows


def test_inactivation_vs_lambs(benchmark, show):
    rows = run_once(benchmark, _sweep)
    lines = [f"{'d':>2} {'n':>4} {'faults':>7} {'inactivated':>12} {'lambs':>8}"]
    for d, n, f, i, l in rows:
        lines.append(f"{d:>2} {n:>4} {f:>7} {i:>12.1f} {l:>8.1f}")
    show("\n".join(lines) + "\n")
    # Shape: in the 3D 3% regime, inactivation costs orders of
    # magnitude more than lambs.
    three_d = [(f, i, l) for d, n, f, i, l in rows if d == 3]
    f, i, l = three_d[-1]
    assert i > 10 * max(1.0, l)
