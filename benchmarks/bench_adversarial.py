"""Section 6.3.1's adversarial family: Lamb1 at ratio 2 - 1/(2m).

Regenerates the Fig. 15 instances for several m, showing Lamb1
returning (4m-1)n lambs where 2mn is optimal, and the general-exact
method recovering the optimum.
"""

import pytest

from repro.complexity import lamb1_adversarial_instance
from repro.core import find_lamb_set
from repro.routing import repeated, xy

from conftest import run_once


def _sweep(ms):
    rows = []
    for m in ms:
        inst = lamb1_adversarial_instance(m)
        orderings = repeated(xy(), 2)
        lamb1 = find_lamb_set(inst.faults, orderings)
        if m <= 2:
            # Cross-check the analytic optimum with the exact solver on
            # the small instances (the intersection graph grows fast).
            exact = find_lamb_set(
                inst.faults, orderings, method="general-exact",
                wvc_max_vertices=80,
            )
            assert exact.size == inst.optimal_lamb_size
        rows.append(
            (m, 4 * m + 1, lamb1.size, inst.optimal_lamb_size,
             lamb1.size / inst.optimal_lamb_size)
        )
    return rows


def test_lamb1_adversarial_ratio(benchmark, show):
    rows = run_once(benchmark, _sweep, (1, 2, 3, 4))
    out = [f"{'m':>3} {'n':>4} {'Lamb1':>7} {'optimal':>8} {'ratio':>6}"]
    for m, n, a, o, r in rows:
        out.append(f"{m:>3} {n:>4} {a:>7} {o:>8} {r:>6.3f}")
    show("\n".join(out) + "\n")
    for m, n, a, o, r in rows:
        assert a == (4 * m - 1) * n
        assert o == 2 * m * n
        assert r == pytest.approx(2 - 1 / (2 * m))
