"""System-level benchmarks: saturation curve and the lambs-must-route
cascade ablation.

Not a paper figure — these extend the evaluation to the wormhole
machine itself, confirming (i) the reconfigured network behaves like a
healthy wormhole network up to saturation, and (ii) the design choice
that lambs keep routing is load-bearing: inactivating them cascades
into further sacrifices.
"""

import numpy as np

from repro.core import find_lamb_set
from repro.experiments import render_sweep
from repro.experiments.wormhole_experiments import (
    injection_rate_sweep,
    lambs_must_route,
)
from repro.mesh import FaultSet, Mesh, random_node_faults
from repro.routing import repeated, xy

from conftest import run_once


def _setup(n=12, f=6, seed=2):
    mesh = Mesh.square(2, n)
    faults = random_node_faults(mesh, f, np.random.default_rng(seed))
    orderings = repeated(xy(), 2)
    return faults, orderings, find_lamb_set(faults, orderings)


def test_saturation_curve(benchmark, show):
    _, _, result = _setup()
    sweep = run_once(
        benchmark, injection_rate_sweep, result,
        rates=(0.1, 0.4, 0.8, 1.6, 3.2), window=300,
    )
    show(render_sweep(sweep, aggs=("avg",)))
    lat = sweep.column("avg_latency")
    thr = sweep.column("throughput")
    # Saturation shape: latency climbs steeply at high load while
    # accepted throughput keeps rising toward the network limit.
    assert lat[-1] > 1.5 * lat[0]
    assert thr[-1] > thr[0]
    # Every message drains (deadlock-free discipline).
    for s in sweep.series:
        assert s.avg("delivered") > 0


def _cascade_sweep():
    rows = []
    mesh = Mesh.square(2, 16)
    orderings = repeated(xy(), 2)
    rng = np.random.default_rng(13)
    for f in (8, 12, 16):
        for t in range(4):
            faults = FaultSet(mesh, mesh.random_nodes(f, rng))
            c = lambs_must_route(faults, orderings)
            if c.base_lambs:
                rows.append((f, t, c))
    return rows


def test_lambs_must_route_cascade(benchmark, show):
    rows = run_once(benchmark, _cascade_sweep)
    lines = [f"{'f':>3} {'trial':>5} {'lambs':>6} {'if inactivated':>15} {'factor':>7}"]
    for f, t, c in rows:
        lines.append(
            f"{f:>3} {t:>5} {c.base_lambs:>6} {c.total_sacrificed:>15} "
            f"{c.cascade_factor:>7.2f}"
        )
    show("\n".join(lines) + "\n")
    # The ablation's point: inactivation can never need FEWER nodes,
    # and on some instances it cascades strictly.
    assert all(c.total_sacrificed >= c.base_lambs for _, _, c in rows)
    if rows:
        assert any(c.total_sacrificed > c.base_lambs for _, _, c in rows) or all(
            c.base_lambs == c.total_sacrificed for _, _, c in rows
        )
