"""Fig. 26: average lamb-pipeline running time vs fault percentage,
M3(32) and M2(181).

Absolute times are not comparable to the paper's 133 MHz C
implementation; the reproduced *shape* is the superlinear growth with
f (the pipeline is O(f^3)) and same-order times for the two meshes of
equal node count.
"""

from repro.experiments import default_trials, fig26, render_sweep

from conftest import run_once


def test_fig26(benchmark, show):
    result = run_once(benchmark, fig26, trials=default_trials(2))
    show(render_sweep(result, aggs=("avg",)))
    t3 = result.column("seconds_3d")
    t2 = result.column("seconds_2d")
    # Superlinear growth: 6x the faults costs much more than 6x only
    # in the cubic regime; at minimum the trend must be increasing.
    assert t3[-1] > t3[0]
    assert t2[-1] > t2[0]
