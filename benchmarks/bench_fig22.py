"""Fig. 22: avg lamb %% of N vs faults/bisection-width, 3D meshes
n = 10, 16, 25.

Same shape as Fig. 21 in 3D: graceful below the bisection width,
degrading beyond it, and worse for the smallest mesh (at ratio 3,
M3(10) is 30%% faulty vs 2.4%% for M3(25) — the paper's explanation).
"""

from repro.experiments import default_trials, fig22, render_sweep

from conftest import run_once


def test_fig22(benchmark, show):
    result = run_once(benchmark, fig22, trials=default_trials(2))
    show(render_sweep(result, aggs=("avg",)))
    first, last = result.series[0], result.series[-1]
    for n in (10, 16, 25):
        key = f"lamb_pct_n{n}"
        assert first.avg(key) <= last.avg(key)
        assert first.avg(key) < 1.0
    assert last.avg("lamb_pct_n10") >= last.avg("lamb_pct_n25")
