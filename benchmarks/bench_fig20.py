"""Fig. 20: avg & max #lambs vs fault percentage on M2(181).

M2(181) has nearly the same node count (32761) as M3(32) (32768), but
its bisection width is 181 vs 1024: at 3% faults f = 983 is > 5x the
bisection width, and the lamb count is dramatically larger than the 3D
mesh's 67.6 (the paper's motivation for studying the
faults/bisection-width ratio in Figs. 21-22).
"""

from repro.experiments import default_trials, fig20, render_sweep

from conftest import run_once


def test_fig20(benchmark, show):
    result = run_once(benchmark, fig20, trials=default_trials(2))
    show(render_sweep(result, keys=["lambs"]))
    lambs = result.column("lambs")
    assert lambs[0] <= lambs[-1]
    # Shape: the 2D mesh of the same size needs far more lambs than
    # M3(32)'s ~68 at 3%.
    assert lambs[-1] > 5 * 68
