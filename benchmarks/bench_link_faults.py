"""Extension benchmarks: lamb sets under link faults.

Not a paper figure (Section 8 simulates node faults only); exercises
the link-fault machinery at figure scale and quantifies the benefit of
native link-fault handling over the Section 2.2 node-conversion.
"""

from repro.experiments import default_trials, render_sweep
from repro.experiments.link_faults import link_fault_sweep, link_vs_node_conversion
from repro.mesh import Mesh

from conftest import run_once


def test_link_fault_sweep_2d(benchmark, show):
    result = run_once(
        benchmark, link_fault_sweep, Mesh.square(2, 32),
        trials=default_trials(5),
    )
    show(render_sweep(result, keys=["lambs"]))
    lambs = result.column("lambs")
    assert lambs[0] <= lambs[-1]
    # Link faults are gentler than node faults: fewer lambs than the
    # Fig. 17 node-fault counts at the same percentage.
    assert lambs[-1] < 0.05 * 1024


def test_link_vs_node_conversion(benchmark, show):
    result = run_once(
        benchmark, link_vs_node_conversion, Mesh.square(2, 24), 17,
        trials=default_trials(8),
    )
    show(render_sweep(result, aggs=("avg",)))
    s = result.series[0]
    # Native handling sacrifices strictly fewer nodes on average than
    # converting links to node faults (which destroys good endpoints).
    assert s.avg("sacrificed_native") < s.avg("sacrificed_converted")
