"""Extension benchmark: lamb cost vs fault geometry.

Same fault count, three geometries: uniform dust, Eden clusters, and a
partially failed plane.  Expected shape: clusters cost no more (often
fewer) lambs per fault than dust; concentrating the same faults on one
plane costs far more (it approaches the bisection pathology of
Section 3 / Fig. 21-22's beyond-the-bisection regime).
"""

import numpy as np

from repro.experiments import default_trials, render_sweep
from repro.experiments.fault_geometry import fault_geometry_sweep
from repro.mesh import Mesh

from conftest import run_once


def test_fault_geometry(benchmark, show):
    result = run_once(
        benchmark, fault_geometry_sweep, Mesh.square(3, 10),
        (10, 30, 60, 100), trials=default_trials(4),
    )
    show(render_sweep(result, aggs=("avg",)))
    last = result.series[-1]
    # Planar concentration is catastrophically worse than dust.
    assert last.avg("lambs_plane") > 3 * max(1.0, last.avg("lambs_uniform"))
    # Clusters don't blow up relative to dust.
    assert last.avg("lambs_clustered") <= 4 * max(1.0, last.avg("lambs_uniform")) + 8
