"""Wormhole simulator benchmarks: deadlock-free lamb routing under
load, and turn counts vs the fault-ring baseline.

Covers the paper's system-level claims: (i) 2-round DOR on 2 VCs
drains arbitrary survivor traffic without deadlock on a faulty mesh
with a lamb set; (ii) route turns stay within k(d-1) + (k-1), while a
fault-ring router's turns grow linearly with the mesh on ladder
faults.
"""

import numpy as np

from repro.baselines import BlockFaultRouter
from repro.baselines.block_fault import comb_blocks
from repro.core import find_lamb_set
from repro.mesh import Mesh, random_node_faults
from repro.routing import (
    FaultGrids,
    count_turns,
    count_turns_multiround,
    find_k_round_route,
    max_turns_bound,
    repeated,
    xy,
    xyz,
)
from repro.wormhole import WormholeSimulator, uniform_random_traffic

from conftest import run_once


def _drain_3d(num_messages=200):
    mesh = Mesh.square(3, 8)
    rng = np.random.default_rng(5)
    faults = random_node_faults(mesh, 15, rng)
    orderings = repeated(xyz(), 2)
    result = find_lamb_set(faults, orderings)
    endpoints = [v for v in mesh.nodes() if result.is_survivor(v)]
    sim = WormholeSimulator(faults, orderings, seed=5)
    for inj in uniform_random_traffic(endpoints, num_messages, rng, num_flits=8):
        sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
    return sim.run(max_cycles=500_000)


def test_survivor_traffic_drains_3d(benchmark, show):
    stats = run_once(benchmark, _drain_3d)
    show(
        f"3D drain: {stats.delivered}/{stats.total_messages} messages, "
        f"{stats.cycles} cycles, avg latency {stats.avg_latency:.1f}, "
        f"max turns {stats.max_turns}\n"
    )
    assert stats.delivered == stats.total_messages
    assert stats.max_turns <= max_turns_bound(3, 2)


def _turns_sweep():
    rows = []
    orderings = repeated(xy(), 2)
    for n in (16, 32, 64):
        mesh = Mesh((n, n))
        router = BlockFaultRouter(mesh, comb_blocks(mesh, column=n // 2))
        src, dst = (n // 2, 0), (n // 2, n - 1)
        ring_turns = count_turns(router.route(src, dst))
        faults = router.fault_set()
        paths = find_k_round_route(FaultGrids(faults), orderings, src, dst)
        lamb_turns = count_turns_multiround(paths)
        rows.append((n, ring_turns, lamb_turns))
    return rows


def test_turns_vs_fault_rings(benchmark, show):
    rows = run_once(benchmark, _turns_sweep)
    lines = [f"{'n':>4} {'ring turns':>11} {'lamb turns':>11}"]
    for n, rt, lt in rows:
        lines.append(f"{n:>4} {rt:>11} {lt:>11}")
    show("\n".join(lines) + "\n")
    # Ring turns grow ~linearly; lamb turns bounded by 3 (2D, k=2).
    assert rows[-1][1] >= 2 * rows[0][1]
    for _, rt, lt in rows:
        assert lt <= max_turns_bound(2, 2)
        assert rt > lt
