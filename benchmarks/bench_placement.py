"""Ablation: machine capacity — lambs vs healthy-submesh reservation.

The scheduler's alternative to fault-tolerant routing is carving a
fault-free submesh out of the machine.  This benchmark measures, for
growing fault percentages on a 3D mesh, (a) the survivor count under
the lamb regime and (b) the size of the largest fully healthy cubic
submesh.  Expected shape: the healthy submesh collapses fast (a 3%
fault rate leaves no big clean cube), while the lamb regime keeps
~99.7% of the good nodes usable — the capacity argument behind the
paper's approach.
"""

import numpy as np

from repro.core import find_lamb_set
from repro.mesh import Mesh, random_node_faults
from repro.placement import largest_free_cubic_submesh, usable_grid
from repro.routing import repeated, xyz

from conftest import run_once


def _sweep(n=16, percents=(0.5, 1.0, 2.0, 3.0), trials=3):
    mesh = Mesh.square(3, n)
    orderings = repeated(xyz(), 2)
    rows = []
    for pct in percents:
        f = max(1, int(round(mesh.num_nodes * pct / 100)))
        surv, cube = [], []
        for t in range(trials):
            rng = np.random.default_rng((31, int(pct * 10), t))
            faults = random_node_faults(mesh, f, rng)
            result = find_lamb_set(faults, orderings)
            grid = usable_grid(result)
            surv.append(int(grid.sum()))
            cube.append(largest_free_cubic_submesh(grid))
        rows.append((pct, f, float(np.mean(surv)), float(np.mean(cube))))
    return rows, mesh.num_nodes


def test_capacity_comparison(benchmark, show):
    rows, N = run_once(benchmark, _sweep)
    lines = [
        f"{'%faults':>8} {'f':>5} {'survivors':>10} {'surv %':>7} "
        f"{'largest cube':>13} {'cube %':>7}"
    ]
    for pct, f, surv, cube in rows:
        lines.append(
            f"{pct:>8} {f:>5} {surv:>10.0f} {100 * surv / N:>6.1f}% "
            f"{cube:>10.1f}^3 {100 * cube**3 / N:>6.1f}%"
        )
    show("\n".join(lines) + "\n")
    # Lamb regime keeps nearly everything; submesh reservation collapses.
    pct, f, surv, cube = rows[-1]  # 3% faults
    assert surv / N > 0.95
    assert cube**3 / N < 0.5
