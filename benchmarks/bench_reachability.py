"""Micro-benchmarks of the reachability kernels.

The one-round matrix groups representative rows by their line keys
once per dimension; ``_group_rows`` used to walk rows in Python and is
now a single ``np.unique(..., return_inverse=True)`` + stable argsort.
This file pins both the speed (at paper-scale representative counts,
p, q ~ (2d-1)f + 1) and bit-identical grouping vs the reference loop.
"""

import numpy as np
import pytest

from repro.core.reachability import _group_rows, one_round_reachability_matrix
from repro.mesh import Mesh, random_node_faults
from repro.routing import LineFaultIndex, xyz

from conftest import run_once


def _reference_group_rows(arr, cols):
    """The historical per-row Python loop (kept as the oracle)."""
    groups = {}
    if len(cols) == 0:
        return {(): np.arange(arr.shape[0])}
    key_arr = arr[:, list(cols)]
    for i in range(arr.shape[0]):
        groups.setdefault(tuple(int(x) for x in key_arr[i]), []).append(i)
    return {k: np.asarray(v, dtype=np.intp) for k, v in groups.items()}


def _rep_array(d=3, f=160, seed=0):
    """(p, d) representative-like rows at p = (2d-1)f + 1."""
    p = (2 * d - 1) * f + 1
    rng = np.random.default_rng(seed)
    return rng.integers(0, 32, size=(p, d)).astype(np.int64)


def test_group_rows(benchmark, show):
    """Vectorized grouping at paper scale, checked against the loop."""
    arr = _rep_array()
    cols = [1, 2]
    got = _group_rows(arr, cols)
    want = _reference_group_rows(arr, cols)
    assert got.keys() == want.keys()
    for k in want:
        assert np.array_equal(got[k], want[k])
    benchmark(_group_rows, arr, cols)
    show(f"\n_group_rows: {arr.shape[0]} rows -> {len(got)} groups, "
         "bit-identical to the reference loop\n")


@pytest.mark.parametrize("cols", [[], [0], [0, 1, 2]])
def test_group_rows_matches_reference(cols):
    arr = _rep_array(seed=3)
    got = _group_rows(arr, cols)
    want = _reference_group_rows(arr, cols)
    assert got.keys() == want.keys()
    for k in want:
        assert np.array_equal(got[k], want[k])


def test_one_round_matrix_kernel(benchmark):
    """End-to-end one-round matrix at p = q = (2d-1)f + 1."""
    mesh = Mesh.square(3, 32)
    f = 160
    faults = random_node_faults(mesh, f, np.random.default_rng(1))
    index = LineFaultIndex(faults)
    rng = np.random.default_rng(2)
    good = np.array(
        [v for v in mesh.nodes() if not faults.node_is_faulty(tuple(v))],
        dtype=np.int64,
    )
    p = (2 * mesh.d - 1) * f + 1
    S = good[rng.choice(good.shape[0], size=p, replace=False)]
    D = good[rng.choice(good.shape[0], size=p, replace=False)]
    R = run_once(benchmark, one_round_reachability_matrix, index, xyz(), S, D)
    assert R.shape == (p, p)
