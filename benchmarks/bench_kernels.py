"""Micro-benchmarks of the pipeline kernels.

Verifies the complexity story of Section 6: partition time is
near-linear in f, the reachability stage (the O(f^3) boolean products)
dominates, and the whole pipeline is independent of the mesh size N
(same f on a 32^3 and a 64^3 mesh costs the same).
"""

import numpy as np

from repro.core import find_lamb_set
from repro.core.partition import find_ses_partition
from repro.mesh import Mesh, random_node_faults
from repro.routing import LineFaultIndex, repeated, xyz

from conftest import run_once


def test_partition_kernel(benchmark):
    mesh = Mesh.square(3, 32)
    faults = random_node_faults(mesh, 983, np.random.default_rng(0))
    benchmark(find_ses_partition, faults, xyz())


def test_pipeline_small_f(benchmark):
    mesh = Mesh.square(3, 32)
    faults = random_node_faults(mesh, 160, np.random.default_rng(0))
    orderings = repeated(xyz(), 2)
    index = LineFaultIndex(faults)
    benchmark.pedantic(
        find_lamb_set, args=(faults, orderings),
        kwargs={"index": index}, rounds=3, iterations=1,
    )


def test_mesh_size_independence(benchmark, show):
    """Same fault count on meshes of very different size: the pipeline
    cost tracks f, not N (the paper's headline engineering claim)."""
    orderings = repeated(xyz(), 2)
    f = 200
    times = {}
    for n in (16, 32, 64):
        mesh = Mesh.square(3, n)
        faults = random_node_faults(mesh, f, np.random.default_rng(1))
        result = find_lamb_set(faults, orderings)
        times[n] = result.timings["total"]

    def _run():
        mesh = Mesh.square(3, 64)
        faults = random_node_faults(mesh, f, np.random.default_rng(1))
        return find_lamb_set(faults, orderings)

    run_once(benchmark, _run)
    show(
        "pipeline seconds at f=200: "
        + ", ".join(f"n={n}: {t:.3f}" for n, t in times.items())
        + "\n"
    )
    # 64^3 has 64x the nodes of 16^3; the pipeline must not be 64x
    # slower (allow a generous 4x for cache and partition effects).
    assert times[64] < 4 * max(times[16], 1e-3)
