"""Fig. 19: average additional damage (#lambs / #faults), 2D vs 3D.

Paper reference points at 3% faults: 2D damage = 9.59/31 = 30.9%,
3D damage = 67.6/983 = 6.88% — the 3D mesh tolerates faults far more
gracefully (bisection-width argument, Section 8).
"""

from repro.experiments import default_trials, fig19, render_sweep

from conftest import run_once


def test_fig19(benchmark, show):
    result = run_once(benchmark, fig19, trials=default_trials(3))
    show(render_sweep(result, aggs=("avg",)))
    last = result.series[-1]
    # Shape: 3D additional damage is several times smaller than 2D.
    assert last.avg("damage_3d") < last.avg("damage_2d")
    assert last.avg("damage_3d") < 0.2
