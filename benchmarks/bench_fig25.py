"""Fig. 25: avg & max #SES vs fault percentage on M3(32), against the
Theorem 6.4 bound B(d, f).

Paper shape: the measured SES counts sit well below B(d, f), which in
turn is far below the loose (2d-1) f + 1 = 5f + 1.  Also reports the
matrix densities of Section 6.2 (I1 ~ 0.0099, R1 ~ 0.175 at 3%).
"""

from repro.core import partition_size_bound_loose
from repro.experiments import default_trials, fig25, render_sweep
from repro.experiments.figures import _faults_for_percent
from repro.mesh import Mesh

from conftest import run_once


def test_fig25(benchmark, show):
    result = run_once(benchmark, fig25, trials=default_trials(3))
    show(render_sweep(result, keys=["num_ses", "bound"]))
    mesh = Mesh.square(3, 32)
    for s in result.series:
        f = _faults_for_percent(mesh, s.x)
        assert s.max("num_ses") <= s.values["bound"][0]
        assert s.values["bound"][0] <= partition_size_bound_loose(3, f)
    # At 3%: paper reports ~1800 average SES's vs bound 2007.
    last = result.series[-1]
    assert 1000 <= last.avg("num_ses") <= 2007
    # Paper: "the average number of SES's is very close to the average
    # number of DES's ... within 0.08%" (random faults are symmetric).
    for s in result.series:
        assert abs(s.avg("num_ses") - s.avg("num_des")) <= 0.02 * s.avg("num_ses")
