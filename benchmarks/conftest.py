"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.
Trial counts default to small values so the whole suite finishes in a
few minutes; set ``REPRO_TRIALS`` to approach the paper's 1000-trial
statistics.  Each benchmark prints the regenerated rows (the series
the paper plots) and asserts the qualitative *shape* the paper reports
— who wins, roughly by how much, where the trend bends.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one timed invocation and return
    its value (the figure sweeps are seconds-to-minutes long; classic
    multi-round benchmarking would be wasteful)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so regenerated rows always reach
    the terminal."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text, end="")

    return _show
