"""Fig. 23: avg lamb %% of N vs mesh size, 2D meshes, 3%% faults.

Paper shape: at a fixed fault *percentage*, the lamb percentage grows
with the mesh size, because f = 0.03 N grows like n^2 while the
bisection width grows only like n.
"""

from repro.experiments import default_trials, fig23, render_sweep

from conftest import run_once


def test_fig23(benchmark, show):
    result = run_once(benchmark, fig23, trials=default_trials(3))
    show(render_sweep(result, aggs=("avg",), keys=["lamb_pct", "lambs"]))
    pcts = result.column("lamb_pct")
    # Growth with N (allow local noise, compare ends).
    assert pcts[-1] > pcts[0]
    assert result.xs == sorted(result.xs)
