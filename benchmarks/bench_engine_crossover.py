"""Engine comparison: the O(p^3) product chain vs the O(p N) floods.

Measures both reachability engines across a fault sweep.  The engines
must agree bit-for-bit on every instance; the ``engine="auto"`` cost
model must never pick an engine that loses by more than 3x (a
regret bound — on small meshes the vectorized product chain wins
everywhere because p is capped by the good-node count, and the floods
only take over at large p on large meshes; see
``tests/test_spanning.py`` for the selection-policy unit tests).
"""

from repro.experiments import default_trials, render_sweep
from repro.experiments.engine_scaling import engine_crossover_sweep
from repro.mesh import Mesh

from conftest import run_once


def test_engine_crossover(benchmark, show):
    result = run_once(
        benchmark, engine_crossover_sweep, Mesh.square(2, 24),
        (4, 16, 64, 160, 288), trials=default_trials(3),
    )
    show(render_sweep(result, aggs=("avg",)))
    from repro.core import recommended_engine  # noqa: F401  (policy doc)

    for s in result.series:
        assert s.avg("agree") == 1.0
        fast = min(s.avg("seconds_lines"), s.avg("seconds_spanning"))
        auto = (
            s.avg("seconds_spanning")
            if s.avg("auto_picks_spanning") > 0.5
            else s.avg("seconds_lines")
        )
        assert auto <= 3 * fast + 0.01, f"auto regret too high at f={s.x}"
