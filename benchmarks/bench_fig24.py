"""Fig. 24: avg lamb %% of N vs mesh size, 3D meshes, 3%% faults.

Same shape as Fig. 23 in 3D (f/bisection = 0.03 n^3 / n^2 grows
linearly in n), at much lower absolute percentages than 2D.
"""

from repro.experiments import default_trials, fig24, render_sweep

from conftest import run_once


def test_fig24(benchmark, show):
    result = run_once(benchmark, fig24, trials=default_trials(2))
    show(render_sweep(result, aggs=("avg",), keys=["lamb_pct", "lambs"]))
    pcts = result.column("lamb_pct")
    assert pcts[-1] > pcts[0]
    # 3D stays well-behaved: under 1% of N even at n = 32.
    assert pcts[-1] < 1.0
