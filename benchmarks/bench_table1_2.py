"""Tables 1 and 2 + the Section 5 worked example, regenerated.

Benchmarks the full Lamb1 pipeline on the 12x12 example and checks the
published artifacts bit-for-bit: the R matrix (Table 1), the R^(2)
matrix (Table 2), the 9-SES/7-DES partitions, and the lamb set
Λ = {(11,10), (10,11)} with cover weight 2.
"""

import numpy as np

from repro.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_matrix,
    worked_example,
)

from conftest import run_once


def test_tables_1_and_2(benchmark, show):
    we = run_once(benchmark, worked_example)
    show(
        "Table 1 (R, one round):\n"
        + render_matrix(we.R)
        + "\nTable 2 (R^(2), two rounds):\n"
        + render_matrix(we.R2)
        + f"\nlamb set: {sorted(we.result.lambs)}  weight={we.result.cover_weight}\n"
    )
    assert np.array_equal(we.R, PAPER_TABLE1)
    assert np.array_equal(we.R2, PAPER_TABLE2)
    assert we.matches_paper()
