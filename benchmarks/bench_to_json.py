"""Machine-readable perf-regression harness.

Runs a small curated benchmark subset — the lamb pipeline, the
reachability product kernel (dense and bit-packed), the wormhole
simulator under saturation (frontier and vector engines), the seeded
chaos scenario, the parallel trial engine, the route-query service
data path, and the workflow engine's checkpoint-replay overhead — and
writes ``BENCH_<date>.json`` rows of ``{bench, mesh,
wall_s, cycles_per_s / trials_per_s / queries_per_s}``.  A comparator
mode diffs a fresh run against the latest committed baseline and fails
on a >25% wall-clock regression; rows with an embedded oracle
``speedup`` ratio (bitpack vs dense, vector vs frontier) must
additionally stay above ``SPEEDUP_FLOOR`` on every host.

Usage (from the repo root, ``PYTHONPATH=src``)::

    python benchmarks/bench_to_json.py                # write BENCH_<date>.json
    python benchmarks/bench_to_json.py --check        # compare vs baseline, exit 1 on regression
    python benchmarks/bench_to_json.py --check --auto # CI mode: warn-and-pass when
                                                      # no baseline / foreign host

or ``make bench-json`` / ``make bench-check``.

Noise control: every bench runs ``--repeats`` times (default 3) and
keeps the *minimum* wall time; the comparator additionally passes with
a warning when the baseline was recorded on a different host
fingerprint (CPU count / machine / Python), since absolute wall times
do not transfer between machines.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import sys
import time
from datetime import date
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core import find_lamb_set
from repro.core.reachability import one_round_reachability_matrix
from repro.experiments.harness import lamb_trials
from repro.experiments.parallel import available_cpu_count, engine_jobs
from repro.mesh import Mesh, random_node_faults
from repro.mesh.faults import FaultSet
from repro.routing import LineFaultIndex, repeated, xy, xyz
from repro.wormhole.chaos import seeded_chaos_run
from repro.wormhole.simulator import WormholeSimulator

#: Comparator threshold: fail when a bench is more than this much
#: slower than the committed baseline.
REGRESSION_TOLERANCE = 0.25

#: Acceptance floor for rows that embed a ``speedup`` field (packed vs
#: dense products, vector vs frontier engine): the optimized path must
#: stay at least this many times faster than its oracle — a host-
#: independent ratio, so it is enforced even when wall-clock
#: comparisons are skipped.
SPEEDUP_FLOOR = 5.0

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# The curated subset
# ----------------------------------------------------------------------
def _bench_lamb_pipeline() -> Dict[str, object]:
    """Full Find-Lamb pipeline on M3(32) with f = 160 (Section 6)."""
    mesh = Mesh.square(3, 32)
    faults = random_node_faults(mesh, 160, np.random.default_rng(0))
    orderings = repeated(xyz(), 2)
    index = LineFaultIndex(faults)
    t0 = time.perf_counter()
    result = find_lamb_set(faults, orderings, index=index)
    wall = time.perf_counter() - t0
    assert result.num_ses > 0
    return {"bench": "lamb_pipeline", "mesh": "M3(32) f=160",
            "wall_s": wall, "trials_per_s": 1.0 / wall}


def _bench_reachability_product() -> Dict[str, object]:
    """One-round reachability kernel at paper-scale representative
    counts: p = q = (2d-1)f + 1 on M3(32), f = 160."""
    mesh = Mesh.square(3, 32)
    f = 160
    faults = random_node_faults(mesh, f, np.random.default_rng(1))
    index = LineFaultIndex(faults)
    rng = np.random.default_rng(2)
    good = np.array(
        [v for v in mesh.nodes() if not faults.node_is_faulty(tuple(v))],
        dtype=np.int64,
    )
    p = (2 * mesh.d - 1) * f + 1
    S = good[rng.choice(good.shape[0], size=p, replace=False)]
    D = good[rng.choice(good.shape[0], size=p, replace=False)]
    t0 = time.perf_counter()
    R = one_round_reachability_matrix(index, xyz(), S, D)
    wall = time.perf_counter() - t0
    assert R.shape == (p, p)
    return {"bench": "reachability_product", "mesh": f"M3(32) p=q={p}",
            "wall_s": wall, "trials_per_s": 1.0 / wall}


def _bench_reachability_bitpack() -> Dict[str, object]:
    """Bit-packed R·I·R product chain vs the dense-bool oracle at
    paper-scale p = (2d-1)f + 1 on M3(32), f = 160.  Both chains are
    computed on the same operands; the row embeds the dense wall time
    and the packed/dense ``speedup`` (the comparator requires >= 5x)
    and asserts bit-identical results."""
    import scipy.sparse as sp

    from repro.core.reachability import (
        PackedBoolMatrix, bool_matmul, packed_bool_matmul,
    )

    mesh = Mesh.square(3, 32)
    f = 160
    faults = random_node_faults(mesh, f, np.random.default_rng(1))
    index = LineFaultIndex(faults)
    rng = np.random.default_rng(2)
    good = np.array(
        [v for v in mesh.nodes() if not faults.node_is_faulty(tuple(v))],
        dtype=np.int64,
    )
    p = (2 * mesh.d - 1) * f + 1
    S = good[rng.choice(good.shape[0], size=p, replace=False)]
    D = good[rng.choice(good.shape[0], size=p, replace=False)]
    R = one_round_reachability_matrix(index, xyz(), S, D)
    I_dense = np.zeros((p, p), dtype=bool)
    idx = rng.integers(0, p, size=(p * 3, 2))
    I_dense[idx[:, 0], idx[:, 1]] = True
    np.fill_diagonal(I_dense, True)
    I = sp.csr_matrix(I_dense)

    t0 = time.perf_counter()
    expect = bool_matmul(bool_matmul(R, I), R)
    dense_wall = time.perf_counter() - t0

    Rp = PackedBoolMatrix.pack(R)
    t0 = time.perf_counter()
    got = packed_bool_matmul(packed_bool_matmul(Rp, I), Rp).unpack()
    wall = time.perf_counter() - t0
    assert np.array_equal(got, expect)
    return {"bench": "reachability_bitpack", "mesh": f"M3(32) p=q={p}",
            "wall_s": wall, "trials_per_s": 1.0 / wall,
            "dense_wall_s": dense_wall, "speedup": dense_wall / wall}


def _bench_sim_saturation() -> Dict[str, object]:
    """Wormhole simulator (frontier engine) under staggered uniform
    traffic on a fault-free M2(16): 400 messages x 8 flits."""
    mesh = Mesh.square(2, 16)
    sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2), seed=0)
    nodes = [tuple(int(x) for x in v) for v in mesh.nodes()]
    rng = np.random.default_rng(7)
    for _ in range(400):
        s, d = rng.choice(len(nodes), size=2, replace=False)
        sim.send(nodes[s], nodes[d], num_flits=8,
                 inject_cycle=int(rng.integers(0, 2000)))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {"bench": "sim_saturation", "mesh": "M2(16) 400 msgs",
            "wall_s": wall, "cycles_per_s": sim.cycle / wall}


def _bench_sim_saturation_vector() -> Dict[str, object]:
    """Vector engine on its home-turf workload — high concurrency, low
    contention: VC-layered row streams on a fault-free M2(32) (32 rows
    x 8 virtual channels, 31-hop explicit routes, 16 flits, 10 waves
    staggered 50 cycles = 2560 messages).  The same workload runs
    through the frontier oracle; the row embeds the frontier wall time
    and the ``speedup`` (the comparator requires >= 5x) and asserts
    the two engines produce identical stats."""
    from repro.wormhole.packets import Hop

    def build(engine: str) -> WormholeSimulator:
        mesh = Mesh.square(2, 32)
        sim = WormholeSimulator(FaultSet(mesh), repeated(xy(), 2), seed=0,
                                engine=engine, num_vcs=8)
        side, vcs, flits, waves, stagger = 32, 8, 16, 10, 50
        for w in range(waves):
            for y in range(side):
                path = [(x, y) for x in range(side)]
                for vc in range(vcs):
                    hops = [Hop(u, v, vc) for u, v in zip(path, path[1:])]
                    sim.send(path[0], path[-1], num_flits=flits, hops=hops,
                             inject_cycle=w * stagger)
        return sim

    frontier = build("frontier")
    t0 = time.perf_counter()
    frontier_stats = frontier.run(max_cycles=200_000)
    frontier_wall = time.perf_counter() - t0

    vector = build("vector")
    t0 = time.perf_counter()
    vector_stats = vector.run(max_cycles=200_000)
    wall = time.perf_counter() - t0
    assert vector_stats == frontier_stats
    assert vector.cycle == frontier.cycle
    return {"bench": "sim_saturation_vector", "mesh": "M2(32) 2560 msgs",
            "wall_s": wall, "cycles_per_s": vector.cycle / wall,
            "frontier_wall_s": frontier_wall,
            "speedup": frontier_wall / wall}


def _bench_chaos_smoke() -> Dict[str, object]:
    """The acceptance chaos scenario: 8x8 mesh, 120 messages, 3
    mid-flight fault events with rollback/reconfigure epochs."""
    t0 = time.perf_counter()
    report = seeded_chaos_run(widths=(8, 8), initial_faults=2,
                              num_messages=120, num_events=3, seed=0)
    wall = time.perf_counter() - t0
    assert report.fully_accounted
    return {"bench": "chaos_smoke", "mesh": "M2(8) 3 events",
            "wall_s": wall, "cycles_per_s": report.stats.cycles / wall}


def _bench_trial_engine() -> Dict[str, object]:
    """Seeded lamb trials through the ambient trial engine (serial
    here; the point is tracking per-trial throughput)."""
    mesh = Mesh.square(2, 32)
    trials = 6
    t0 = time.perf_counter()
    series = lamb_trials(mesh, 31, trials=trials, seed=0, tag=17)
    wall = time.perf_counter() - t0
    assert len(series.values["lambs"]) == trials
    return {"bench": "trial_engine", "mesh": "M2(32) f=31 x6",
            "wall_s": wall, "trials_per_s": trials / wall}


def _bench_trial_engine_executor(executor: str) -> Dict[str, object]:
    """The same seeded lamb sweep fanned over a worker pool.  On a
    multi-core host the process rows should show ~jobs-times the
    thread rows' throughput (the sweep is pure-Python and GIL-bound);
    on a 1-core host both collapse to the serial timing."""
    # jobs=None: inherit the ambient engine installed by the wrapper
    # (that is what carries the executor choice).
    jobs = min(4, available_cpu_count())
    mesh = Mesh.square(2, 32)
    trials = 12
    t0 = time.perf_counter()
    series = lamb_trials(mesh, 31, trials=trials, seed=0, tag=17)
    wall = time.perf_counter() - t0
    assert len(series.values["lambs"]) == trials
    return {"bench": f"trial_engine_{executor}s",
            "mesh": f"M2(32) f=31 x{trials} j{jobs}",
            "wall_s": wall, "trials_per_s": trials / wall}


def _bench_trial_engine_threads() -> Dict[str, object]:
    with engine_jobs(min(4, available_cpu_count()), executor="thread"):
        return _bench_trial_engine_executor("thread")


def _bench_trial_engine_procs() -> Dict[str, object]:
    with engine_jobs(min(4, available_cpu_count()), executor="process"):
        return _bench_trial_engine_executor("proc")


def _bench_reliability_campaign() -> Dict[str, object]:
    """Seeded Poisson reliability campaign on M2(8): timeline sampling
    + per-interval compile through the content-addressed cache +
    connectivity scoring (serial, so the row tracks the per-trial
    cost, not pool startup)."""
    from repro.reliability import CampaignConfig, run_campaign

    cfg = CampaignConfig(
        widths=(8, 8), rate=1.5, mttr=0.3, horizon=2.0, trials=4, seed=0,
    )
    t0 = time.perf_counter()
    report = run_campaign(cfg, jobs=1)
    wall = time.perf_counter() - t0
    assert report.accounting.all_accounted
    return {"bench": "reliability_campaign", "mesh": "M2(8) x4 trials",
            "wall_s": wall, "trials_per_s": cfg.trials / wall}


def _bench_service_throughput() -> Dict[str, object]:
    """Route-query service data path: real TCP on localhost, 1000
    pipelined queries (batches of 100) against a pre-compiled 16x16
    artifact.  Times only the query phase — the compile is the control
    path and has its own bench (``lamb_pipeline``)."""
    import asyncio

    from repro.service.client import RouteQueryClient
    from repro.service.compiler import ReconfigurationCompiler
    from repro.service.server import RouteQueryServer

    mesh = Mesh.square(2, 16)
    faults = random_node_faults(mesh, 5, np.random.default_rng(4))
    queries = 1000

    async def run() -> float:
        compiler = ReconfigurationCompiler(mesh, repeated(xy(), 2))
        server = RouteQueryServer(compiler)
        host, port = await server.start()
        client = await RouteQueryClient.connect(
            host, port, default_timeout=120.0
        )
        compiled = await client.compile(faults)
        excluded = {
            tuple(v)
            for v in list(compiled["lamb_nodes"])
            + list(compiled["quarantined"])
        }
        survivors = [
            v
            for v in mesh.nodes()
            if not faults.node_is_faulty(v) and v not in excluded
        ]
        rng = np.random.default_rng(9)
        pairs = []
        while len(pairs) < queries:
            i = int(rng.integers(len(survivors)))
            j = int(rng.integers(len(survivors)))
            if i != j:
                pairs.append((survivors[i], survivors[j]))
        # Warm the route cache is *not* wanted here: the first pass IS
        # the measurement (cold lookups are the realistic case).
        t0 = time.perf_counter()
        for at in range(0, queries, 100):
            replies = await client.query_batch(
                pairs[at:at + 100], epoch=compiled["epoch"]
            )
            assert all(r.get("ok") for r in replies)
        wall = time.perf_counter() - t0
        await client.close()
        await server.stop()
        return wall

    wall = asyncio.run(run())
    return {"bench": "service_throughput", "mesh": "M2(16) 1000 q",
            "wall_s": wall, "queries_per_s": queries / wall}


def _bench_service_throughput_sharded() -> Dict[str, object]:
    """The sharded plane in its production regime: 3 replica workers
    behind a router, binary codec, warmed routing tables, pipelined
    batches over 2 connections.  The ``speedup`` ratio is sharded
    warm qps over the single-process *cold-lookup* qps measured
    moments earlier on the same host (the ``service_throughput``
    regime), so the CI floor (>= SPEEDUP_FLOOR) holds regardless of
    how fast the machine is.  The headroom comes from warm tables +
    one-frame batch serialization, not core count — a 1-CPU runner
    still clears the floor; multi-core hosts go far past it."""
    import asyncio

    from repro.service.loadgen import LoadgenConfig, run_loadgen
    from repro.service.shard import ShardRouter

    single = _bench_service_throughput()
    single_qps = float(single["queries_per_s"])

    async def run() -> Dict[str, object]:
        router = ShardRouter(dims=(16, 16), rounds=2, num_shards=3)
        host, port = await router.start()
        try:
            return await run_loadgen(
                LoadgenConfig(
                    host=host, port=port, codec="binary",
                    connections=2, batches=20, batch_size=250,
                    warmup_batches=2,
                )
            )
        finally:
            await router.stop()

    report = asyncio.run(run())
    sharded_qps = float(report["throughput"]["qps"])
    return {
        "bench": "service_throughput_sharded",
        "mesh": "M2(16) 3sh 5000 q",
        "wall_s": float(report["throughput"]["wall_s"]),
        "queries_per_s": sharded_qps,
        "single_queries_per_s": round(single_qps, 3),
        "speedup": sharded_qps / single_qps,
    }


def _bench_workflow_resume() -> Dict[str, object]:
    """Checkpoint-replay overhead: a fully-populated reliability-slo
    checkpoint store resumed by fresh runner processes.  Every step is
    a cache hit, so the wall time is pure workflow-engine overhead —
    digest computation + ArtifactStore reads — which is what a killed
    campaign pays before doing new work."""
    import shutil
    import tempfile

    from repro.service.store import ArtifactStore
    from repro.workflow import WorkflowRunner

    overrides = {
        "sample-timeline": {"horizon": 1.0},
        "run-campaign": {"horizon": 1.0, "trials": 2},
    }
    root = tempfile.mkdtemp(prefix="wf-bench-")
    try:
        first = WorkflowRunner(store=ArtifactStore(root=root)).run(
            "reliability-slo", overrides=overrides
        )
        assert first.executed_steps == 3
        resumes = 20
        t0 = time.perf_counter()
        for _ in range(resumes):
            outcome = WorkflowRunner(store=ArtifactStore(root=root)).run(
                "reliability-slo", overrides=overrides
            )
            assert outcome.executed_steps == 0
        wall = time.perf_counter() - t0
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"bench": "workflow_resume_overhead",
            "mesh": f"reliability-slo x{resumes}",
            "wall_s": wall, "trials_per_s": resumes / wall}


BENCHES: Tuple[Callable[[], Dict[str, object]], ...] = (
    _bench_lamb_pipeline,
    _bench_reachability_product,
    _bench_reachability_bitpack,
    _bench_sim_saturation,
    _bench_sim_saturation_vector,
    _bench_chaos_smoke,
    _bench_trial_engine,
    _bench_trial_engine_threads,
    _bench_trial_engine_procs,
    _bench_reliability_campaign,
    _bench_service_throughput,
    _bench_service_throughput_sharded,
    _bench_workflow_resume,
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def host_fingerprint() -> Dict[str, object]:
    """Identity of the machine a baseline was recorded on.

    ``cpu_count`` is the affinity-aware count — in a cgroup-limited CI
    container that is the number of cores the benches can actually
    use, which is what makes wall times comparable; the raw host core
    count is kept alongside for context.
    """
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpu_count": available_cpu_count(),
        "cpu_count_raw": os.cpu_count(),
    }


def run_benches(repeats: int = 3) -> List[Dict[str, object]]:
    """Run every bench ``repeats`` times, keeping the fastest repeat
    (rate metrics are rescaled to the kept wall time)."""
    rows: List[Dict[str, object]] = []
    for fn in BENCHES:
        best: Optional[Dict[str, object]] = None
        for _ in range(max(1, repeats)):
            row = fn()
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        best["wall_s"] = round(float(best["wall_s"]), 6)
        for key in ("cycles_per_s", "trials_per_s", "queries_per_s",
                    "speedup"):
            if key in best:
                best[key] = round(float(best[key]), 3)
        for key in ("dense_wall_s", "frontier_wall_s"):
            if key in best:
                best[key] = round(float(best[key]), 6)
        rows.append(best)
        print(f"  {best['bench']:<22} {best['mesh']:<18} "
              f"{best['wall_s']:>9.3f} s", file=sys.stderr)
    return rows


def payload(rows: List[Dict[str, object]]) -> Dict[str, object]:
    return {
        "schema": SCHEMA_VERSION,
        "generated": date.today().isoformat(),
        "host": host_fingerprint(),
        "benches": rows,
    }


def find_baseline(root: str = ".") -> Optional[str]:
    """Latest committed ``BENCH_<date>.json`` (lexicographic order is
    chronological for ISO dates)."""
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    return paths[-1] if paths else None


def compare(
    baseline: Dict[str, object],
    current: List[Dict[str, object]],
    tolerance: float = REGRESSION_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare runs; returns (regressions, notes)."""
    regressions: List[str] = []
    notes: List[str] = []
    base_by_name = {row["bench"]: row for row in baseline.get("benches", [])}
    for row in current:
        name = row["bench"]
        base = base_by_name.get(name)
        if base is None:
            notes.append(f"{name}: no baseline entry (new bench)")
            continue
        old, new = float(base["wall_s"]), float(row["wall_s"])
        ratio = new / old if old > 0 else float("inf")
        verdict = (f"{name}: {old:.3f}s -> {new:.3f}s ({ratio:.2f}x)")
        if ratio > 1.0 + tolerance:
            regressions.append(verdict + f"  REGRESSION (> {tolerance:.0%})")
        else:
            notes.append(verdict)
    return regressions, notes


def check_speedups(
    rows: List[Dict[str, object]], floor: float = SPEEDUP_FLOOR
) -> List[str]:
    """Rows embedding a ``speedup`` ratio must meet the floor."""
    failures: List[str] = []
    for row in rows:
        if "speedup" in row and float(row["speedup"]) < floor:
            failures.append(
                f"{row['bench']}: speedup {float(row['speedup']):.2f}x "
                f"< required {floor:.0f}x"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None,
                    help="output path (default: BENCH_<today>.json)")
    ap.add_argument("--check", action="store_true",
                    help="compare a fresh run against the latest committed "
                         "BENCH_*.json instead of writing a new file")
    ap.add_argument("--auto", action="store_true",
                    help="with --check: warn-and-pass when no baseline "
                         "exists yet or it was recorded on another host "
                         "(first-run CI mode)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="repeats per bench, fastest kept (default 3)")
    args = ap.parse_args(argv)

    print("running perf subset "
          f"({len(BENCHES)} benches x {args.repeats} repeats)...",
          file=sys.stderr)
    rows = run_benches(repeats=args.repeats)

    if not args.check:
        out = args.out or f"BENCH_{date.today().isoformat()}.json"
        with open(out, "w") as fh:
            json.dump(payload(rows), fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
        return 0

    # The speedup floor is a ratio measured inside one run, so it is
    # host-independent — enforce it even when the wall-clock baseline
    # comparison is skipped (no baseline / foreign host).
    speedup_failures = check_speedups(rows)
    for line in speedup_failures:
        print(f"  FAIL {line}", file=sys.stderr)
    if speedup_failures:
        return 1

    base_path = find_baseline()
    if base_path is None:
        msg = "no committed BENCH_*.json baseline found"
        if args.auto:
            print(f"WARNING: {msg}; passing (run `make bench-json` and "
                  "commit the result to arm the perf gate)")
            return 0
        print(f"ERROR: {msg}", file=sys.stderr)
        return 1
    with open(base_path) as fh:
        baseline = json.load(fh)
    if baseline.get("host") != host_fingerprint():
        print(f"WARNING: baseline {base_path} was recorded on a different "
              f"host ({baseline.get('host')} vs {host_fingerprint()}); "
              "wall-clock comparison is not meaningful — passing")
        return 0
    regressions, notes = compare(baseline, rows)
    for line in notes:
        print(f"  ok  {line}")
    for line in regressions:
        print(f"  FAIL {line}", file=sys.stderr)
    if regressions:
        print(f"perf regression vs {base_path}", file=sys.stderr)
        return 1
    print(f"no perf regression vs {base_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
